//! A generic time-ordered event queue.
//!
//! Two implementations with one contract — earliest `(time, seq)` first,
//! so events scheduled for the same instant pop in FIFO order:
//!
//! * [`EventQueue`] — a calendar (bucket-ring) queue tuned to the
//!   simulator's nanosecond timebase. Events within a ~2 ms horizon land
//!   in a ring of 1 µs-wide buckets (push O(1), pop scans one sparse
//!   bucket); far-future events (TCP delayed-ACK and RTO timers live
//!   hundreds of milliseconds out) sit in a binary-heap overflow and are
//!   consulted on every pop so ordering is exact even when the horizon
//!   has advanced past an overflow entry's slot. The current minimum is
//!   cached so `peek_time` — called on every sequencer iteration — is a
//!   field read.
//! * [`BinaryHeapQueue`] — the original heap keyed by `(time, seq)`,
//!   kept as the reference implementation: the equivalence proptest
//!   below drives both with the same schedule and demands identical pop
//!   order, and the `bench` experiment measures the calendar's
//!   events/sec advantage against it.
//!
//! Deterministic tie-breaking is essential: the whole simulator must be
//! a pure function of its seed, and heap or bucket order alone is not
//! stable.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original binary-heap event queue, kept as the reference
/// implementation and benchmark baseline for [`EventQueue`].
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    high_water: usize,
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Schedule `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest number of events ever pending at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

/// log2 of the bucket width in nanoseconds: 2^10 ns ≈ 1 µs. One 10 Mb/s
/// bit time is 100 ns, a minimum frame 57.6 µs, a maximum frame 1.2 ms —
/// so MAC- and segment-scale events spread across many buckets while a
/// full frame transmission still fits inside the ring horizon.
const BUCKET_SHIFT: u32 = 10;
/// Ring size (power of two). Horizon = 2048 × 1 µs ≈ 2.1 ms.
const NUM_BUCKETS: usize = 2048;

/// Where the cached minimum entry currently lives.
#[derive(Clone, Copy, PartialEq, Eq)]
enum MinLoc {
    Ring(usize),
    Overflow,
}

#[derive(Clone, Copy)]
struct CachedMin {
    time: SimTime,
    seq: u64,
    loc: MinLoc,
}

/// Earliest-first event queue with stable FIFO order at equal times —
/// the calendar-queue implementation (see the module docs for the
/// design and [`BinaryHeapQueue`] for the reference baseline).
pub struct EventQueue<E> {
    /// Ring of buckets; bucket `i` holds events whose tick maps to `i`.
    buckets: Vec<Vec<Entry<E>>>,
    /// Tick (`time >> BUCKET_SHIFT`) of the cursor bucket.
    base_tick: u64,
    /// Ring index of the bucket holding tick `base_tick`.
    cursor: usize,
    /// Events pending in the ring.
    ring_len: usize,
    /// Far-future events (tick ≥ base_tick + NUM_BUCKETS at push time).
    overflow: BinaryHeap<Entry<E>>,
    /// Cached minimum of the whole queue; `None` only when empty.
    min: Option<CachedMin>,
    next_seq: u64,
    high_water: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

fn tick_of(t: SimTime) -> u64 {
    t.as_nanos() >> BUCKET_SHIFT
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        buckets.resize_with(NUM_BUCKETS, Vec::new);
        EventQueue {
            buckets,
            base_tick: 0,
            cursor: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            min: None,
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Schedule `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        // Clamp ticks before the cursor into the cursor bucket: every
        // earlier bucket is empty by invariant, the per-bucket min scan
        // orders by (time, seq), so a "late" push still pops in exact
        // global order relative to everything still pending.
        let tick = tick_of(time).max(self.base_tick);
        let loc = if tick < self.base_tick + NUM_BUCKETS as u64 {
            let b = (tick % NUM_BUCKETS as u64) as usize;
            self.buckets[b].push(Entry { time, seq, event });
            self.ring_len += 1;
            MinLoc::Ring(b)
        } else {
            self.overflow.push(Entry { time, seq, event });
            MinLoc::Overflow
        };
        match self.min {
            Some(m) if (m.time, m.seq) <= (time, seq) => {}
            _ => self.min = Some(CachedMin { time, seq, loc }),
        }
        self.high_water = self.high_water.max(self.len());
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.min.map(|m| m.time)
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let m = self.min.take()?;
        let out = match m.loc {
            MinLoc::Ring(b) => {
                let bucket = &mut self.buckets[b];
                let i = bucket
                    .iter()
                    .position(|e| e.seq == m.seq)
                    .expect("cached min present in its bucket");
                let e = bucket.swap_remove(i);
                self.ring_len -= 1;
                (e.time, e.event)
            }
            MinLoc::Overflow => {
                let e = self.overflow.pop().expect("cached min in overflow");
                (e.time, e.event)
            }
        };
        self.recompute_min();
        Some(out)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest number of events ever pending at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Rebuild the cached minimum after a pop: advance the cursor to the
    /// first non-empty bucket (rebasing the ring onto the overflow heap
    /// when the ring drains), min-scan that bucket, and compare against
    /// the overflow head — an overflow entry can precede ring entries
    /// once the horizon has advanced past its original slot.
    fn recompute_min(&mut self) {
        if self.ring_len == 0 {
            // Rebase: jump the ring to the overflow's earliest tick and
            // pull everything within the new horizon into buckets. Each
            // event migrates at most once, so the cost amortizes.
            if let Some(head) = self.overflow.peek() {
                self.base_tick = tick_of(head.time);
                self.cursor = (self.base_tick % NUM_BUCKETS as u64) as usize;
                let horizon = self.base_tick + NUM_BUCKETS as u64;
                while self
                    .overflow
                    .peek()
                    .is_some_and(|e| tick_of(e.time) < horizon)
                {
                    let e = self.overflow.pop().expect("peeked");
                    let b = (tick_of(e.time) % NUM_BUCKETS as u64) as usize;
                    self.buckets[b].push(e);
                    self.ring_len += 1;
                }
            } else {
                self.min = None;
                return;
            }
        }
        // Advance the cursor to the first non-empty bucket. Total cursor
        // movement per ring sweep is NUM_BUCKETS, amortized over pops.
        while self.buckets[self.cursor].is_empty() {
            self.cursor = (self.cursor + 1) % NUM_BUCKETS;
            self.base_tick += 1;
        }
        let bucket = &self.buckets[self.cursor];
        let mut best = (bucket[0].time, bucket[0].seq);
        for e in &bucket[1..] {
            if (e.time, e.seq) < best {
                best = (e.time, e.seq);
            }
        }
        let mut min = CachedMin {
            time: best.0,
            seq: best.1,
            loc: MinLoc::Ring(self.cursor),
        };
        if let Some(h) = self.overflow.peek() {
            if (h.time, h.seq) < (min.time, min.seq) {
                min = CachedMin {
                    time: h.time,
                    seq: h.seq,
                    loc: MinLoc::Overflow,
                };
            }
        }
        self.min = Some(min);
    }
}

/// Explicit, history-independent total order for fabric events.
///
/// The plain [`EventQueue`] breaks equal-time ties by *push order*, which
/// is deterministic for a single sequential driver but depends on the
/// global interleaving of pushes — exactly the thing a sharded simulation
/// cannot cheaply reproduce. `EventKey` replaces insertion order with an
/// explicit composite key derived only from the frame's own history:
///
/// * `time` — the scheduled instant;
/// * `class` — 0 for calendar (scheduled store-and-forward) events,
///   1 for shared-medium (bus) events, preserving the fabric's
///   "calendar first, then segments" tie rule;
/// * `major` — the frame's fabric-entry stamp (calendar) or the global
///   node index of the segment (bus);
/// * `minor` — the frame's per-hop counter (calendar) so one frame's
///   successive events stay unique, or an intra-event emission index.
///
/// Two fabrics that process the same offered load therefore agree on the
/// event order *by construction*, regardless of how many shards the work
/// is split across.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Scheduled instant.
    pub time: SimTime,
    /// 0 = calendar event, 1 = bus event; calendar wins ties.
    pub class: u8,
    /// Fabric-entry stamp (calendar) or global node index (bus).
    pub major: u64,
    /// Per-transit hop counter (calendar) or emission index (bus).
    pub minor: u64,
}

impl EventKey {
    /// Key for a scheduled (calendar) event of the transit identified by
    /// its fabric-entry `stamp`, at its `hop`-th scheduled event.
    pub fn calendar(time: SimTime, stamp: u64, hop: u64) -> EventKey {
        EventKey {
            time,
            class: 0,
            major: stamp,
            minor: hop,
        }
    }

    /// Key for the head event of the shared-medium bus at global node
    /// index `node`.
    pub fn bus(time: SimTime, node: u64) -> EventKey {
        EventKey {
            time,
            class: 1,
            major: node,
            minor: 0,
        }
    }
}

struct KeyedEntry<E> {
    key: EventKey,
    event: E,
}

impl<E> PartialEq for KeyedEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for KeyedEntry<E> {}
impl<E> PartialOrd for KeyedEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for KeyedEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap; invert for earliest-key-first.
        other.key.cmp(&self.key)
    }
}

/// An event queue ordered by explicit [`EventKey`] rather than insertion
/// order — the shard-safe counterpart of [`EventQueue`]. Pop order is a
/// pure function of the pushed keys, so any partitioning of the pushes
/// across shards that merges by key reproduces the sequential order.
pub struct KeyedQueue<E> {
    heap: BinaryHeap<KeyedEntry<E>>,
    high_water: usize,
}

impl<E> Default for KeyedQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> KeyedQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        KeyedQueue {
            heap: BinaryHeap::new(),
            high_water: 0,
        }
    }

    /// Schedule `event` under `key`. Keys must be unique per queue — the
    /// fabric guarantees this via the (stamp, hop) pair.
    pub fn push(&mut self, key: EventKey, event: E) {
        self.heap.push(KeyedEntry { key, event });
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Key of the earliest pending event.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|e| e.key)
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.time)
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(EventKey, E)> {
        self.heap.pop().map(|e| (e.key, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest number of events ever pending at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), "c");
        q.push(SimTime::from_millis(1), "a");
        q.push(SimTime::from_millis(3), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_at_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(2);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(9), ());
        q.push(SimTime::from_micros(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(4)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(4));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn far_future_timers_cross_the_horizon() {
        // RTO-scale events land in the overflow and must interleave
        // exactly with ring events as the cursor advances to them.
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(1000), "rto");
        q.push(SimTime::from_micros(3), "mac");
        q.push(SimTime::from_millis(200), "delack");
        assert_eq!(q.pop().unwrap().1, "mac");
        assert_eq!(q.pop().unwrap().1, "delack");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1000)));
        assert_eq!(q.pop().unwrap().1, "rto");
        assert!(q.is_empty());
    }

    #[test]
    fn push_before_cursor_still_orders_correctly() {
        // Advance the cursor past t=0, then push an "old" timestamp: it
        // must pop before everything later-scheduled that remains.
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), "later");
        q.push(SimTime::from_millis(1), "first");
        assert_eq!(q.pop().unwrap().1, "first");
        q.push(SimTime::from_micros(10), "past");
        assert_eq!(q.pop().unwrap().1, "past");
        assert_eq!(q.pop().unwrap().1, "later");
    }

    #[test]
    fn high_water_counts_ring_and_overflow() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(1), 0);
        q.push(SimTime::from_secs(5), 1);
        q.push(SimTime::from_secs(9), 2);
        assert_eq!(q.high_water(), 3);
        while q.pop().is_some() {}
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.len(), 0);
    }

    proptest! {
        #[test]
        fn pop_order_is_nondecreasing(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                count += 1;
            }
            prop_assert_eq!(count, times.len());
        }

        #[test]
        fn equal_time_events_preserve_insertion_order(n in 1usize..100) {
            let mut q = EventQueue::new();
            let t = SimTime::from_secs(1);
            for i in 0..n {
                q.push(t, i);
            }
            let mut prev = None;
            while let Some((_, i)) = q.pop() {
                if let Some(p) = prev {
                    prop_assert!(i > p);
                }
                prev = Some(i);
            }
        }

        /// The tentpole equivalence property: an interleaved schedule of
        /// pushes (spanning sub-bucket ties, ring distances, and
        /// overflow-horizon distances) and pops drives the calendar
        /// queue and the reference heap identically — same pop order,
        /// same times, same lengths, including ties.
        #[test]
        fn calendar_matches_binary_heap(
            ops in prop::collection::vec(
                // (push-vs-pop selector, time-offset class, raw offset)
                (0u8..100, 0u8..3, 0u64..4_000),
                1..300,
            )
        ) {
            let mut cal = EventQueue::new();
            let mut heap = BinaryHeapQueue::new();
            let mut clock = 0u64; // monotone base, like the simulator's
            let mut id = 0usize;
            for (sel, class, raw) in ops {
                if sel < 65 {
                    // Class 0: same-bucket ties; 1: within the ring
                    // horizon; 2: far future (overflow).
                    let offset = match class {
                        0 => raw % 8,
                        1 => raw * 500,                // ≤ 2 ms
                        _ => 10_000_000 + raw * 1_000, // ≥ 10 ms out
                    };
                    let t = SimTime::from_nanos(clock + offset);
                    cal.push(t, id);
                    heap.push(t, id);
                    id += 1;
                } else {
                    prop_assert_eq!(cal.peek_time(), heap.peek_time());
                    let a = cal.pop();
                    let b = heap.pop();
                    match (a, b) {
                        (Some((ta, ea)), Some((tb, eb))) => {
                            prop_assert_eq!(ta, tb);
                            prop_assert_eq!(ea, eb);
                            clock = clock.max(ta.as_nanos());
                        }
                        (None, None) => {}
                        other => prop_assert!(false, "diverged: {other:?}"),
                    }
                }
                prop_assert_eq!(cal.len(), heap.len());
            }
            // Drain both; the full remaining order must agree.
            while let (Some((ta, ea)), Some((tb, eb))) = (cal.pop(), heap.pop()) {
                prop_assert_eq!(ta, tb);
                prop_assert_eq!(ea, eb);
            }
            prop_assert!(cal.is_empty() && heap.is_empty());
        }

        /// Merge-by-key is partition-independent: splitting a set of
        /// keyed events across any number of queues and merging by
        /// `peek_key` reproduces the single-queue pop order exactly.
        #[test]
        fn keyed_merge_is_partition_independent(
            events in prop::collection::vec(
                // Last field packs (minor sub-key, home-shard selector).
                (0u64..1_000, 0u8..2, 0u64..16, 0u64..16),
                1..150,
            )
        ) {
            // Deduplicate keys: the fabric guarantees uniqueness.
            let mut seen = std::collections::HashSet::new();
            let events: Vec<_> = events
                .into_iter()
                .filter(|&(t, class, major, packed)| {
                    seen.insert((t, class, major, packed % 4))
                })
                .collect();
            let key_of = |&(t, class, major, packed): &(u64, u8, u64, u64)| EventKey {
                time: SimTime::from_nanos(t),
                class,
                major,
                minor: packed % 4,
            };
            let mut single = KeyedQueue::new();
            for (i, e) in events.iter().enumerate() {
                single.push(key_of(e), i);
            }
            for shards in [1usize, 2, 4] {
                let mut qs: Vec<KeyedQueue<usize>> =
                    (0..shards).map(|_| KeyedQueue::new()).collect();
                for (i, e) in events.iter().enumerate() {
                    qs[(e.3 / 4) as usize % shards].push(key_of(e), i);
                }
                let mut merged = Vec::new();
                loop {
                    let best = (0..shards)
                        .filter_map(|s| qs[s].peek_key().map(|k| (k, s)))
                        .min();
                    match best {
                        Some((_, s)) => merged.push(qs[s].pop().unwrap()),
                        None => break,
                    }
                }
                let mut reference = KeyedQueue::new();
                for (i, e) in events.iter().enumerate() {
                    reference.push(key_of(e), i);
                }
                let mut expect = Vec::new();
                while let Some(x) = reference.pop() {
                    expect.push(x);
                }
                prop_assert_eq!(&merged, &expect, "shards={}", shards);
            }
        }
    }

    #[test]
    fn event_key_orders_time_then_class_then_subkeys() {
        let t = SimTime::from_micros(5);
        let cal = EventKey::calendar(t, 9, 0);
        let bus = EventKey::bus(t, 0);
        assert!(cal < bus, "calendar wins equal-time ties");
        assert!(EventKey::calendar(t, 1, 3) < EventKey::calendar(t, 2, 0));
        assert!(EventKey::calendar(t, 1, 0) < EventKey::calendar(t, 1, 1));
        assert!(EventKey::bus(t, 0) < EventKey::bus(t, 3));
        assert!(EventKey::bus(SimTime::from_micros(4), 7) < cal);
    }

    #[test]
    fn keyed_queue_pops_by_key() {
        let mut q = KeyedQueue::new();
        let t = SimTime::from_micros(1);
        q.push(EventKey::bus(t, 2), "bus2");
        q.push(EventKey::calendar(t, 5, 1), "cal5");
        q.push(EventKey::calendar(SimTime::ZERO, 9, 0), "early");
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "cal5");
        assert_eq!(q.pop().unwrap().1, "bus2");
        assert!(q.pop().is_none());
        assert_eq!(q.high_water(), 3);
    }
}
