//! # fxnet-sim
//!
//! Deterministic discrete-event simulation substrate for the `fxnet`
//! reproduction of *"The Measured Network Traffic of Compiler-Parallelized
//! Programs"* (Dinda, Garcia, Leung; CMU-CS-98-144 / ICPP).
//!
//! The paper's testbed was nine DEC 3000/400 Alpha workstations sharing a
//! single bridged 10 Mb/s Ethernet collision domain, with one workstation
//! capturing every frame in promiscuous mode. This crate provides the
//! corresponding simulated substrate:
//!
//! * [`SimTime`] — nanosecond-resolution simulated time (one 10 Mb/s bit
//!   time is exactly 100 ns, so all MAC-layer quantities are exact).
//! * [`SimRng`] — a seeded, reproducible random number generator; every
//!   run of the simulator with the same seed produces an identical packet
//!   trace.
//! * [`Frame`] / [`FrameRecord`] — Ethernet frames and the promiscuous
//!   trace records derived from them (timestamp, wire size including all
//!   headers and the trailer, protocol, source and destination host), the
//!   exact record schema of the paper's §5.3 tcpdump methodology.
//! * [`EtherBus`] — a single shared collision domain with CSMA/CD:
//!   carrier sense, deference, inter-frame gap, collisions among stations
//!   that attempt transmission simultaneously, jam, and truncated binary
//!   exponential backoff.
//! * [`EventQueue`] — a generic time-ordered event queue with stable FIFO
//!   ordering among simultaneous events, used by the protocol layers.
//! * [`CauseId`] / [`CausalEvent`] — compact causal provenance ids and
//!   the tagged delivery stream the protocol layer can optionally emit
//!   (one event per trace row, zero perturbation of timing or trace).
//!
//! Layering is pull-based rather than callback-based: the bus exposes
//! [`EtherBus::next_event_time`] and [`EtherBus::advance`], and the owner
//! (the protocol stack in `fxnet-proto`) interleaves bus events with its
//! own timers. This keeps each layer independently testable.
//!
//! ```
//! use fxnet_sim::{EtherBus, EtherConfig, Frame, FrameKind, HostId, NicId, SimRng, SimTime};
//!
//! let mut bus = EtherBus::new(EtherConfig::default(), SimRng::new(7));
//! let a = bus.attach();
//! let _b = bus.attach();
//! bus.set_promiscuous(true);
//! bus.enqueue(a, Frame::tcp(HostId(0), HostId(1), FrameKind::Data, 1460, 1), SimTime::ZERO);
//! let delivered = bus.run_to_idle();
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(bus.trace()[0].wire_len, 1518);
//! ```

pub mod cause;
pub mod error;
pub mod ethernet;
pub mod frame;
pub mod linkstats;
pub mod queue;
pub mod rates;
pub mod rng;
pub mod spsc;
pub mod switch;
pub mod time;

pub use cause::{AppCause, CausalEvent, Cause, CauseId, FrameMeta, ProtoCause};
pub use error::{FxnetError, FxnetResult};
pub use ethernet::{EtherBus, EtherConfig, EtherStats, NicId, TxError};
pub use frame::{
    Frame, FrameKind, FrameRecord, FrameTap, HostId, Proto, ETHER_OVERHEAD, MAX_FRAME, MIN_FRAME,
};
pub use linkstats::{LinkProbe, LinkSeries, LinkStats, LinkWindow};
pub use queue::{BinaryHeapQueue, EventKey, EventQueue, KeyedQueue};
pub use rates::{RATE_100M, RATE_10M, RATE_1G};
pub use rng::SimRng;
pub use spsc::{ring, RingReceiver, RingSender};
pub use switch::{SwitchConfig, SwitchFabric};
pub use time::SimTime;
