//! Causal provenance identifiers and the tagged frame stream.
//!
//! Every frame the simulator delivers can be traced back to the thing
//! that caused it: an application-level operation (a collective's send on
//! some rank, identified by tenant / rank / phase-span / op sequence) or
//! a protocol artifact the stack generated on its own (a TCP ACK or SYN,
//! a PVM daemon ACK, a heartbeat). The identifier is a single packed
//! `u64` that rides in the protocol layer's token side-table — never in
//! the [`crate::Frame`] itself — so tagging is invisible to the MAC, the
//! trace, and the clock: a tagged run produces a byte-identical trace to
//! an untagged run (asserted like the watch tap's non-perturbation).
//!
//! Layout of [`CauseId`] (bit 63 downwards):
//!
//! ```text
//! tag=01 | tenant:8 | rank:8 | phase:16 | op:30      application op
//! tag=10 | 0...                        | kind:8     protocol artifact
//! all zero                                          none
//! ```

use crate::frame::FrameRecord;
use serde::{Deserialize, Serialize};

const TAG_SHIFT: u32 = 62;
const TAG_APP: u64 = 0b01;
const TAG_PROTO: u64 = 0b10;
const TENANT_SHIFT: u32 = 54;
const RANK_SHIFT: u32 = 46;
const PHASE_SHIFT: u32 = 30;
const OP_MASK: u64 = (1 << 30) - 1;

/// Compact cause identifier carried through the protocol stack.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CauseId(pub u64);

/// A decoded application-op cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppCause {
    /// Tenant (group) index in spec order.
    pub tenant: u32,
    /// Global rank (task id) that issued the op.
    pub rank: u32,
    /// Phase-span sequence number on that rank (0 outside any span).
    pub phase: u32,
    /// Op sequence number on that rank.
    pub op: u32,
}

/// Protocol artifacts the stack emits without an application op behind
/// them; their cause chains terminate here instead of at an app op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProtoCause {
    /// Pure TCP acknowledgment.
    Ack,
    /// TCP connection establishment (SYN / SYN-ACK / final ACK).
    Syn,
    /// PVM daemon keep-alive heartbeat.
    Heartbeat,
    /// PVM daemon stop-and-wait acknowledgment datagram.
    DaemonAck,
}

impl ProtoCause {
    pub fn label(self) -> &'static str {
        match self {
            ProtoCause::Ack => "tcp-ack",
            ProtoCause::Syn => "tcp-syn",
            ProtoCause::Heartbeat => "pvm-heartbeat",
            ProtoCause::DaemonAck => "pvm-daemon-ack",
        }
    }

    const ALL: [ProtoCause; 4] = [
        ProtoCause::Ack,
        ProtoCause::Syn,
        ProtoCause::Heartbeat,
        ProtoCause::DaemonAck,
    ];
}

/// A fully decoded [`CauseId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// Untagged (the token predates tagging, or tagging was off).
    None,
    /// An application operation.
    App(AppCause),
    /// A protocol artifact.
    Protocol(ProtoCause),
}

impl CauseId {
    /// The untagged cause.
    pub const NONE: CauseId = CauseId(0);

    /// Encode an application-op cause. Fields saturate at their bit
    /// widths (8/8/16/30) rather than corrupting neighboring fields.
    pub fn app(tenant: u32, rank: u32, phase: u32, op: u32) -> CauseId {
        let tenant = u64::from(tenant.min(0xFF));
        let rank = u64::from(rank.min(0xFF));
        let phase = u64::from(phase.min(0xFFFF));
        let op = u64::from(op) & OP_MASK;
        CauseId(
            (TAG_APP << TAG_SHIFT)
                | (tenant << TENANT_SHIFT)
                | (rank << RANK_SHIFT)
                | (phase << PHASE_SHIFT)
                | op,
        )
    }

    /// Encode a protocol-artifact cause.
    pub fn protocol(kind: ProtoCause) -> CauseId {
        CauseId((TAG_PROTO << TAG_SHIFT) | kind as u64)
    }

    /// Decode.
    pub fn decode(self) -> Cause {
        match self.0 >> TAG_SHIFT {
            t if t == TAG_APP => Cause::App(AppCause {
                tenant: ((self.0 >> TENANT_SHIFT) & 0xFF) as u32,
                rank: ((self.0 >> RANK_SHIFT) & 0xFF) as u32,
                phase: ((self.0 >> PHASE_SHIFT) & 0xFFFF) as u32,
                op: (self.0 & OP_MASK) as u32,
            }),
            t if t == TAG_PROTO => {
                let kind = (self.0 & 0xFF) as usize;
                ProtoCause::ALL
                    .get(kind)
                    .map_or(Cause::None, |&k| Cause::Protocol(k))
            }
            _ => Cause::None,
        }
    }

    /// The decoded application cause, if this is one.
    pub fn as_app(self) -> Option<AppCause> {
        match self.decode() {
            Cause::App(a) => Some(a),
            _ => None,
        }
    }

    /// Whether this id carries any cause at all.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// Passive MAC-layer timing metadata for one delivered frame. Collected
/// as pure bookkeeping alongside the existing state machine — recording
/// it draws no RNG values and schedules nothing, so timing is untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FrameMeta {
    /// Time spent waiting in the sender's queue before transmission
    /// started, excluding backoff (deference, IFG, jam, head-of-line).
    /// On a multi-hop fabric this sums every hop's wait plus fixed
    /// per-hop latencies, so `queue + backoff + tx` still equals the
    /// frame's end-to-end elapsed time exactly.
    pub queue_ns: u64,
    /// Time spent in collision backoff before this transmission.
    pub backoff_ns: u64,
    /// Wire occupancy of the transmission itself (summed over hops on a
    /// multi-hop fabric).
    pub tx_ns: u64,
    /// Collisions this frame experienced before getting through.
    pub attempts: u32,
    /// Bottleneck inter-node trunk, encoded with [`FrameMeta::trunk_code`].
    /// 0 when the frame crossed no trunk, or when an access hop (its own
    /// segment or port) out-waited every trunk it crossed. Single-hop
    /// fabrics ([`crate::EtherBus`], [`crate::SwitchFabric`]) always
    /// leave it 0.
    pub trunk: u32,
}

impl FrameMeta {
    /// Encode the trunk between topology nodes `a` and `b` as a nonzero
    /// code that survives serialization without a name table: bit 31 set,
    /// node indices packed 15/16 bits.
    #[must_use]
    pub fn trunk_code(a: u32, b: u32) -> u32 {
        (1 << 31) | ((a & 0x7FFF) << 16) | (b & 0xFFFF)
    }

    /// Decode a trunk code back to its `(a, b)` node indices.
    #[must_use]
    pub fn trunk_nodes(code: u32) -> Option<(u32, u32)> {
        (code & (1 << 31) != 0).then_some(((code >> 16) & 0x7FFF, code & 0xFFFF))
    }

    /// The canonical display name of this frame's bottleneck trunk
    /// (`"trunk:n2-n3"`), if one is recorded.
    #[must_use]
    pub fn trunk_label(&self) -> Option<String> {
        Self::trunk_nodes(self.trunk).map(|(a, b)| format!("trunk:n{a}-n{b}"))
    }
}

/// One tagged delivery: the trace record of the frame plus its cause and
/// MAC timing. Emitted by the protocol layer in exactly trace order, so
/// index `i` of the causal stream describes row `i` of the promiscuous
/// trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CausalEvent {
    /// The same record the promiscuous trace stores for this frame.
    pub record: FrameRecord,
    /// What caused the frame.
    pub cause: CauseId,
    /// Whether this delivery is a TCP retransmission of earlier bytes
    /// (the `Retransmit` edge: the cause is the *original* op's).
    pub retx: bool,
    /// TCP connection id (0 for UDP).
    pub conn: u32,
    /// TCP direction within the connection (0 = a→b, 1 = b→a).
    pub dir: u8,
    /// TCP sequence number of the segment's first payload byte (0 for
    /// UDP); distinct `(conn, dir, seq)` triples identify distinct bytes,
    /// deduplicating retransmitted copies.
    pub seq: u64,
    /// MAC timing metadata.
    pub meta: FrameMeta,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_round_trips() {
        let id = CauseId::app(3, 12, 417, 90_210);
        assert!(id.is_some());
        assert_eq!(
            id.decode(),
            Cause::App(AppCause {
                tenant: 3,
                rank: 12,
                phase: 417,
                op: 90_210
            })
        );
        assert_eq!(
            id.as_app(),
            Some(AppCause {
                tenant: 3,
                rank: 12,
                phase: 417,
                op: 90_210
            })
        );
    }

    #[test]
    fn protocol_round_trips() {
        for kind in ProtoCause::ALL {
            let id = CauseId::protocol(kind);
            assert!(id.is_some());
            assert_eq!(id.decode(), Cause::Protocol(kind));
            assert_eq!(id.as_app(), None);
        }
    }

    #[test]
    fn none_decodes_to_none() {
        assert!(!CauseId::NONE.is_some());
        assert_eq!(CauseId::NONE.decode(), Cause::None);
    }

    #[test]
    fn fields_saturate_instead_of_bleeding() {
        let id = CauseId::app(9_999, 9_999, 1_000_000, u32::MAX);
        match id.decode() {
            Cause::App(a) => {
                assert_eq!(a.tenant, 0xFF);
                assert_eq!(a.rank, 0xFF);
                assert_eq!(a.phase, 0xFFFF);
                assert_eq!(a.op, (1 << 30) - 1);
            }
            other => panic!("expected app cause, got {other:?}"),
        }
    }

    #[test]
    fn distinct_ops_get_distinct_ids() {
        let a = CauseId::app(0, 1, 2, 3);
        let b = CauseId::app(0, 1, 2, 4);
        let c = CauseId::app(0, 1, 3, 3);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, CauseId::protocol(ProtoCause::Ack));
    }
}
