//! Named link rates.
//!
//! Every layer that prices a link — the MAC (`EtherConfig`), the switch
//! (`SwitchConfig`), the topology compiler (`fxnet-topo`), the QoS
//! admission model, and the experiment harness — used to repeat the same
//! `10_000_000`-style literals. They live here once, under the names the
//! paper and its successors use for the Ethernet generations.

/// 10 Mb/s — classic shared Ethernet, the paper's measured fabric (§5.1).
pub const RATE_10M: u64 = 10_000_000;

/// 100 Mb/s — Fast Ethernet, the first sweep point above the paper.
pub const RATE_100M: u64 = 100_000_000;

/// 1000 Mb/s — Gigabit Ethernet, the top of the fabric sweep.
pub const RATE_1G: u64 = 1_000_000_000;

/// The three generations the fabric sweep crosses, slowest first.
pub const SWEEP_RATES: [u64; 3] = [RATE_10M, RATE_100M, RATE_1G];

/// Raw byte capacity of a link, bytes/second (the QoS layer's unit: the
/// paper's 10 Mb/s Ethernet is "an aggregate 1.25 MB/s of bandwidth").
#[must_use]
pub fn bytes_per_sec(bps: u64) -> f64 {
    bps as f64 / 8.0
}

/// Human label for a rate ("10M", "100M", "1G", else the raw bps value).
#[must_use]
pub fn rate_label(bps: u64) -> String {
    match bps {
        RATE_10M => "10M".to_string(),
        RATE_100M => "100M".to_string(),
        RATE_1G => "1G".to_string(),
        other => format!("{other}bps"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_capacity_of_the_paper_fabric() {
        assert_eq!(bytes_per_sec(RATE_10M), 1_250_000.0);
        assert_eq!(bytes_per_sec(RATE_100M), 12_500_000.0);
        assert_eq!(bytes_per_sec(RATE_1G), 125_000_000.0);
    }

    #[test]
    fn labels_round_trip_the_generations() {
        assert_eq!(rate_label(RATE_10M), "10M");
        assert_eq!(rate_label(RATE_100M), "100M");
        assert_eq!(rate_label(RATE_1G), "1G");
        assert_eq!(rate_label(42), "42bps");
    }
}
