//! Ethernet frames and promiscuous-mode trace records.
//!
//! The paper's methodology (§5.3) records, for every frame on the shared
//! LAN: a timestamp, the frame size — counting "the data portion, TCP or
//! UDP header, IP header, and Ethernet header and trailer" — the protocol,
//! and the source and destination. [`FrameRecord`] reproduces exactly that
//! schema. With this accounting the minimum observed frame is 58 bytes
//! (14 B Ethernet header + 20 B IP + 20 B TCP + 4 B trailer, a pure ACK)
//! and the maximum is 1518 bytes, matching Figures 3 and 8.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a simulated workstation on the LAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Transport protocol carried by a frame, as a tcpdump-style classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Proto {
    /// TCP: PVM direct-route message passing and its ACK stream.
    Tcp,
    /// UDP: traffic between the PVM daemons.
    Udp,
}

/// Finer-grained classification of what the frame carries. Not part of the
/// paper's record schema (tcpdump would not know), but useful for tests and
/// for the packet-size population analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameKind {
    /// TCP segment carrying payload bytes.
    Data,
    /// Pure TCP acknowledgment (no payload).
    Ack,
    /// TCP connection establishment (SYN / SYN-ACK).
    Syn,
    /// UDP datagram.
    Datagram,
}

/// Ethernet header (14 B) plus trailer/FCS (4 B).
pub const ETHER_OVERHEAD: u32 = 18;
/// IP header bytes.
pub const IP_HEADER: u32 = 20;
/// TCP header bytes (no options, as in the paper's 58-byte minimum).
pub const TCP_HEADER: u32 = 20;
/// UDP header bytes.
pub const UDP_HEADER: u32 = 8;
/// Smallest frame under the paper's size accounting: a pure TCP ACK.
pub const MIN_FRAME: u32 = ETHER_OVERHEAD + IP_HEADER + TCP_HEADER; // 58
/// Largest Ethernet frame (1500 B MTU + header + trailer).
pub const MAX_FRAME: u32 = 1518;
/// Preamble + start-frame delimiter, occupying the wire but not counted in
/// the recorded frame size (tcpdump does not see it).
pub const PREAMBLE: u32 = 8;

/// A frame queued for transmission on the bus.
///
/// Frames do not carry payload bytes; the protocol layer keeps payload in a
/// side table keyed by `token` and the bus only models occupancy and
/// delivery. This keeps the MAC layer independent of everything above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    pub src: HostId,
    pub dst: HostId,
    pub proto: Proto,
    pub kind: FrameKind,
    /// Bytes above the Ethernet layer (IP header + transport header + data).
    pub ip_len: u32,
    /// Opaque correlation token for the protocol layer.
    pub token: u64,
}

impl Frame {
    /// Build a TCP frame carrying `payload` data bytes.
    pub fn tcp(src: HostId, dst: HostId, kind: FrameKind, payload: u32, token: u64) -> Frame {
        debug_assert!(payload <= MAX_FRAME - MIN_FRAME);
        Frame {
            src,
            dst,
            proto: Proto::Tcp,
            kind,
            ip_len: IP_HEADER + TCP_HEADER + payload,
            token,
        }
    }

    /// Build a UDP frame carrying `payload` data bytes.
    pub fn udp(src: HostId, dst: HostId, payload: u32, token: u64) -> Frame {
        debug_assert!(payload <= MAX_FRAME - ETHER_OVERHEAD - IP_HEADER - UDP_HEADER);
        Frame {
            src,
            dst,
            proto: Proto::Udp,
            kind: FrameKind::Datagram,
            ip_len: IP_HEADER + UDP_HEADER + payload,
            token,
        }
    }

    /// Total recorded frame size: data + transport header + IP header +
    /// Ethernet header and trailer (the paper's accounting).
    #[inline]
    pub fn wire_len(&self) -> u32 {
        ETHER_OVERHEAD + self.ip_len
    }

    /// Payload bytes above the transport header.
    #[inline]
    pub fn payload_len(&self) -> u32 {
        let hdr = match self.proto {
            Proto::Tcp => IP_HEADER + TCP_HEADER,
            Proto::Udp => IP_HEADER + UDP_HEADER,
        };
        self.ip_len - hdr
    }

    /// Wire occupancy time at `bps` bits/second, including the preamble.
    #[inline]
    pub fn tx_time(&self, bps: u64) -> SimTime {
        let bits = u64::from(self.wire_len() + PREAMBLE) * 8;
        SimTime::from_nanos(bits * 1_000_000_000 / bps)
    }
}

/// One line of the promiscuous-mode trace: the paper's tcpdump record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameRecord {
    /// Time at which the frame finished transmitting (the capture time).
    pub time: SimTime,
    /// Recorded size: data + transport + IP + Ethernet header and trailer.
    pub wire_len: u32,
    pub proto: Proto,
    pub kind: FrameKind,
    pub src: HostId,
    pub dst: HostId,
}

/// A live observer of delivered frames, invoked at the exact promiscuous
/// capture point (after MAC arbitration, as the frame leaves the wire).
///
/// The tap sees the same [`FrameRecord`] the promiscuous trace would
/// store, whether or not tracing is enabled, and runs strictly outside
/// the MAC state machine: installing one cannot perturb timing, RNG
/// draws, or the captured trace — the same non-perturbation guarantee
/// `fxnet-telemetry` makes.
pub type FrameTap = Box<dyn FnMut(&FrameRecord) + Send>;

impl FrameRecord {
    /// Build the trace record for a frame delivered at `time`.
    pub fn capture(time: SimTime, frame: &Frame) -> FrameRecord {
        FrameRecord {
            time,
            wire_len: frame.wire_len(),
            proto: frame.proto,
            kind: frame.kind,
            src: frame.src,
            dst: frame.dst,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_ack_is_58_bytes() {
        let f = Frame::tcp(HostId(0), HostId(1), FrameKind::Ack, 0, 0);
        assert_eq!(f.wire_len(), 58);
        assert_eq!(f.payload_len(), 0);
    }

    #[test]
    fn full_segment_is_1518_bytes() {
        let f = Frame::tcp(HostId(0), HostId(1), FrameKind::Data, 1460, 0);
        assert_eq!(f.wire_len(), MAX_FRAME);
        assert_eq!(f.payload_len(), 1460);
    }

    #[test]
    fn udp_accounting() {
        let f = Frame::udp(HostId(2), HostId(3), 100, 9);
        assert_eq!(f.wire_len(), 18 + 20 + 8 + 100);
        assert_eq!(f.payload_len(), 100);
    }

    #[test]
    fn tx_time_at_10mbps() {
        // 1518 B frame + 8 B preamble = 1526 B = 12208 bits = 1.2208 ms.
        let f = Frame::tcp(HostId(0), HostId(1), FrameKind::Data, 1460, 0);
        assert_eq!(f.tx_time(10_000_000), SimTime::from_nanos(1_220_800));
        // pure ACK: 66 B with preamble = 528 bits = 52.8 us.
        let a = Frame::tcp(HostId(0), HostId(1), FrameKind::Ack, 0, 0);
        assert_eq!(a.tx_time(10_000_000), SimTime::from_nanos(52_800));
    }

    #[test]
    fn capture_copies_fields() {
        let f = Frame::tcp(HostId(4), HostId(5), FrameKind::Data, 10, 77);
        let r = FrameRecord::capture(SimTime::from_millis(3), &f);
        assert_eq!(r.wire_len, 68);
        assert_eq!(r.src, HostId(4));
        assert_eq!(r.dst, HostId(5));
        assert_eq!(r.proto, Proto::Tcp);
        assert_eq!(r.time, SimTime::from_millis(3));
    }
}
