//! Shared-bus Ethernet with CSMA/CD.
//!
//! Models the paper's testbed network: a multi-segment bridged Ethernet
//! where "all machines shared a common collision domain and an aggregate
//! 1.25 MB/s of bandwidth" (§5.1). Stations carrier-sense, defer while the
//! medium is busy, wait the 9.6 µs inter-frame gap, and — because the
//! simulated propagation delay is zero — collide exactly when two or more
//! deferring stations begin transmitting at the same instant. Colliding
//! stations jam for 3.2 µs and back off a uniformly random number of
//! 51.2 µs slot times, doubling the range per attempt (truncated binary
//! exponential backoff, range capped at 2^10, frame dropped after 16
//! attempts, per IEEE 802.3).
//!
//! The bus is pull-driven: the owner asks for [`EtherBus::next_event_time`]
//! and calls [`EtherBus::advance`] to process exactly one MAC event,
//! collecting any delivered frame. A promiscuous tap (the paper's tcpdump
//! workstation) can be enabled to record every delivered frame.

use crate::cause::FrameMeta;
use crate::frame::{Frame, FrameRecord, FrameTap};
use crate::linkstats::LinkSeries;
use crate::rng::SimRng;
use crate::time::SimTime;
use std::collections::VecDeque;

/// Identifier of a network interface attached to the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NicId(pub u32);

/// MAC-layer configuration. Defaults model 10 Mb/s Ethernet.
#[derive(Debug, Clone)]
pub struct EtherConfig {
    /// Raw signalling rate in bits per second.
    pub bandwidth_bps: u64,
    /// Backoff slot time (512 bit times).
    pub slot: SimTime,
    /// Inter-frame gap (96 bit times).
    pub ifg: SimTime,
    /// Jam duration after a collision (32 bit times).
    pub jam: SimTime,
    /// Backoff exponent cap (attempt count is clamped to this for the
    /// `2^k` range computation).
    pub max_backoff_exp: u32,
    /// Attempts before a frame is dropped ("excessive collisions").
    pub attempt_limit: u32,
    /// Probability that a successfully transmitted frame is corrupted and
    /// discarded by the receiver. 0 in the paper's environment; nonzero
    /// only in the lossy-bus extension.
    pub drop_prob: f64,
    /// Stations beginning transmission within this window of each other
    /// cannot sense one another's carrier yet (propagation + sensing
    /// latency) and collide.
    pub collision_window: SimTime,
    /// Uniform per-contention-round jitter on each station's deference
    /// end (oscillator and MAC timing skew). Wider than the collision
    /// window, so deferred stations usually resolve without colliding —
    /// without it, zero-propagation simulation re-ties every waiter at
    /// exactly `free + IFG` forever.
    pub defer_jitter: SimTime,
}

impl Default for EtherConfig {
    fn default() -> Self {
        EtherConfig {
            bandwidth_bps: crate::rates::RATE_10M,
            slot: SimTime::from_nanos(51_200),
            ifg: SimTime::from_nanos(9_600),
            jam: SimTime::from_nanos(3_200),
            max_backoff_exp: 10,
            attempt_limit: 16,
            drop_prob: 0.0,
            collision_window: SimTime::from_nanos(4_000),
            defer_jitter: SimTime::from_nanos(48_000),
        }
    }
}

/// Error surfaced by the bus for a frame that could not be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// Dropped after exceeding the collision attempt limit.
    ExcessiveCollisions,
    /// Corrupted on the wire (lossy-bus extension).
    Corrupted,
}

/// Aggregate MAC statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EtherStats {
    pub frames_delivered: u64,
    pub bytes_delivered: u64,
    pub collisions: u64,
    /// Individual station backoff rounds entered (one collision event
    /// backs off every collider).
    pub backoffs: u64,
    pub frames_dropped: u64,
    /// Total time the medium was occupied (transmissions + jams), in ns.
    pub busy_ns: u64,
}

#[derive(Debug)]
struct Nic {
    /// Pending frames, each with the earliest instant it may start
    /// (its enqueue time — a frame written "in the future" by a paced
    /// sender must not transmit early just because the line is free).
    queue: VecDeque<(Frame, SimTime)>,
    /// Backoff expiry after collisions (applies to the head frame).
    backoff_until: SimTime,
    attempts: u32,
    /// This contention round's deference jitter (re-rolled every round).
    jitter: SimTime,
    /// Backoff time the head frame has accumulated so far (bookkeeping
    /// only; never read by the state machine).
    backoff_acc: u64,
}

#[derive(Debug)]
struct CurrentTx {
    nic: usize,
    frame: Frame,
    end: SimTime,
    meta: FrameMeta,
}

/// One delivered frame, handed back to the protocol layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    pub time: SimTime,
    pub frame: Frame,
    /// Passive MAC timing metadata (queue / backoff / tx split).
    pub meta: FrameMeta,
}

/// The shared collision domain.
pub struct EtherBus {
    cfg: EtherConfig,
    nics: Vec<Nic>,
    current: Option<CurrentTx>,
    /// Earliest instant the medium is free (end of last tx or jam).
    free_at: SimTime,
    rng: SimRng,
    promiscuous: bool,
    trace: Vec<FrameRecord>,
    tap: Option<FrameTap>,
    stats: EtherStats,
    errors: Vec<(SimTime, Frame, TxError)>,
    /// Scratch list of stations starting at the earliest instant, reused
    /// across `advance` calls so the per-event hot path allocates nothing.
    starters: Vec<usize>,
    /// Per-window sample series when link sampling is enabled:
    /// `(window_ns, series)`. Purely observational — reads the same
    /// quantities the MAC stats already track, draws no RNG, schedules
    /// nothing — so the trace is byte-identical with sampling on or off.
    sampling: Option<(u64, LinkSeries)>,
}

impl EtherBus {
    /// Create a bus with the given MAC configuration and RNG stream.
    pub fn new(cfg: EtherConfig, rng: SimRng) -> Self {
        EtherBus {
            cfg,
            nics: Vec::new(),
            current: None,
            free_at: SimTime::ZERO,
            rng,
            promiscuous: false,
            trace: Vec::new(),
            tap: None,
            stats: EtherStats::default(),
            errors: Vec::new(),
            starters: Vec::new(),
            sampling: None,
        }
    }

    /// Enable (`Some(window_ns)`) or disable (`None`) passive per-window
    /// link sampling. Has no effect on MAC behavior or the trace.
    pub fn set_link_sampling(&mut self, bin_ns: Option<u64>) {
        self.sampling = bin_ns.map(|b| (b.max(1), LinkSeries::new()));
    }

    /// Take the accumulated sample series, if sampling is enabled.
    pub fn take_link_series(&mut self) -> Option<LinkSeries> {
        self.sampling.as_mut().map(|(_, s)| std::mem::take(s))
    }

    /// The active sample window, if sampling is enabled.
    pub fn link_sampling_bin_ns(&self) -> Option<u64> {
        self.sampling.as_ref().map(|(b, _)| *b)
    }

    /// Attach a station; returns its interface id.
    pub fn attach(&mut self) -> NicId {
        let id = NicId(self.nics.len() as u32);
        self.nics.push(Nic {
            queue: VecDeque::new(),
            backoff_until: SimTime::ZERO,
            attempts: 0,
            jitter: SimTime::ZERO,
            backoff_acc: 0,
        });
        id
    }

    /// Number of attached stations.
    pub fn nic_count(&self) -> usize {
        self.nics.len()
    }

    /// Enable or disable the promiscuous trace tap.
    pub fn set_promiscuous(&mut self, on: bool) {
        self.promiscuous = on;
    }

    /// Install (or remove) a live frame tap, called at the promiscuous
    /// capture point for every delivered frame — independent of whether
    /// the trace itself is enabled, and with no effect on MAC behavior.
    pub fn set_tap(&mut self, tap: Option<FrameTap>) {
        self.tap = tap;
    }

    /// The promiscuous trace captured so far.
    pub fn trace(&self) -> &[FrameRecord] {
        &self.trace
    }

    /// Take ownership of the captured trace, leaving it empty.
    pub fn take_trace(&mut self) -> Vec<FrameRecord> {
        std::mem::take(&mut self.trace)
    }

    /// MAC statistics so far.
    pub fn stats(&self) -> EtherStats {
        self.stats
    }

    /// Frames that could not be delivered, with the reason.
    pub fn errors(&self) -> &[(SimTime, Frame, TxError)] {
        &self.errors
    }

    /// Queue a frame for transmission by `nic` at time `now`.
    pub fn enqueue(&mut self, nic: NicId, frame: Frame, now: SimTime) {
        let jitter = self.roll_jitter();
        let n = &mut self.nics[nic.0 as usize];
        if n.queue.is_empty() {
            n.attempts = 0;
            n.backoff_until = SimTime::ZERO;
            n.jitter = jitter;
            n.backoff_acc = 0;
        }
        n.queue.push_back((frame, now));
        if let Some((bin, series)) = &mut self.sampling {
            let depth: usize = self.nics.iter().map(|n| n.queue.len()).sum();
            let w = series.window_mut(now.as_nanos() / *bin);
            w.depth_max = w.depth_max.max(depth as u32);
        }
    }

    fn roll_jitter(&mut self) -> SimTime {
        let j = self.cfg.defer_jitter.as_nanos();
        if j == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_nanos(self.rng.below(j))
        }
    }

    /// Begin a new contention round: every waiting station re-times its
    /// deference end.
    fn reroll_all_jitters(&mut self) {
        for i in 0..self.nics.len() {
            if !self.nics[i].queue.is_empty() {
                let j = self.roll_jitter();
                self.nics[i].jitter = j;
            }
        }
    }

    /// Whether nothing is in flight and all transmit queues are empty.
    pub fn idle(&self) -> bool {
        self.current.is_none() && self.nics.iter().all(|n| n.queue.is_empty())
    }

    /// Total queued frames across all stations.
    pub fn queued_frames(&self) -> usize {
        self.nics.iter().map(|n| n.queue.len()).sum()
    }

    /// Effective transmission start instant for station `i`, if it has a
    /// frame pending: it must be ready, the medium must be free, and the
    /// inter-frame gap observed.
    fn effective_start(&self, i: usize) -> Option<SimTime> {
        let n = &self.nics[i];
        if n.queue.is_empty() {
            return None;
        }
        if let Some(tx) = &self.current {
            if tx.nic == i {
                return None; // already transmitting its head frame
            }
        }
        let head_ready = n.queue.front()?.1;
        let after_medium = self.free_at + self.cfg.ifg;
        Some(head_ready.max(n.backoff_until).max(after_medium) + n.jitter)
    }

    fn medium_busy_until(&self) -> Option<SimTime> {
        self.current.as_ref().map(|t| t.end)
    }

    /// Time of the next MAC event (a transmission completing or a station
    /// starting to transmit), or `None` if the bus is idle.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let mut t = self.medium_busy_until();
        for i in 0..self.nics.len() {
            if let Some(s) = self.effective_start(i) {
                // A deferring station cannot start before an in-flight
                // transmission ends; effective_start already ensures this.
                t = Some(t.map_or(s, |cur| cur.min(s)));
            }
        }
        t
    }

    /// Process exactly one MAC event, appending any delivered frame to
    /// `out`. Returns the event time, or `None` if the bus is idle.
    pub fn advance(&mut self, out: &mut Vec<Delivery>) -> Option<SimTime> {
        let tx_end = self.medium_busy_until();
        let mut starters = std::mem::take(&mut self.starters);
        starters.clear();
        let mut t_start = SimTime::MAX;
        for i in 0..self.nics.len() {
            if let Some(s) = self.effective_start(i) {
                match s.cmp(&t_start) {
                    std::cmp::Ordering::Less => {
                        t_start = s;
                        starters.clear();
                        starters.push(i);
                    }
                    std::cmp::Ordering::Equal => starters.push(i),
                    std::cmp::Ordering::Greater => {}
                }
            }
        }

        // Stations starting within the collision window of the earliest
        // starter cannot sense its carrier yet and join the collision.
        if !starters.is_empty() {
            let horizon = t_start + self.cfg.collision_window;
            for i in 0..self.nics.len() {
                if starters.contains(&i) {
                    continue;
                }
                if let Some(s) = self.effective_start(i) {
                    if s <= horizon {
                        starters.push(i);
                    }
                }
            }
            starters.sort_unstable();
        }

        let complete_first = match (tx_end, starters.is_empty()) {
            (None, true) => {
                self.starters = starters;
                return None;
            }
            (None, false) => false,
            (Some(_), true) => true,
            (Some(end), false) => end <= t_start,
        };

        let result = if complete_first {
            // Current transmission completes and the frame is delivered.
            // `complete_first` implies an in-flight transmission, so the
            // take cannot fail; degrade to idle rather than abort if it
            // ever did.
            self.current.take().map(|tx| {
                let end = tx.end;
                self.free_at = end;
                self.reroll_all_jitters();
                self.stats.frames_delivered += 1;
                self.stats.bytes_delivered += u64::from(tx.frame.wire_len());
                if let Some((bin, series)) = &mut self.sampling {
                    let w = series.window_mut(end.as_nanos() / *bin);
                    w.bytes += u64::from(tx.frame.wire_len());
                    w.frames += 1;
                    w.busy_ns += tx.meta.tx_ns;
                    w.wait_ns += tx.meta.queue_ns;
                    w.backoff_ns += tx.meta.backoff_ns;
                }
                if self.cfg.drop_prob > 0.0 && self.rng.chance(self.cfg.drop_prob) {
                    self.errors.push((end, tx.frame, TxError::Corrupted));
                } else {
                    if self.promiscuous || self.tap.is_some() {
                        let record = FrameRecord::capture(end, &tx.frame);
                        if let Some(tap) = &mut self.tap {
                            tap(&record);
                        }
                        if self.promiscuous {
                            self.trace.push(record);
                        }
                    }
                    out.push(Delivery {
                        time: end,
                        frame: tx.frame,
                        meta: tx.meta,
                    });
                }
                end
            })
        } else {
            // One or more stations begin transmitting at t_start.
            if starters.len() == 1 {
                let i = starters[0];
                // Starters always hold their head frame; the if-let keeps
                // the hot path free of panicking unwraps.
                if let Some((frame, enq)) = self.nics[i].queue.pop_front() {
                    let end = t_start + frame.tx_time(self.cfg.bandwidth_bps);
                    let backoff_ns = self.nics[i].backoff_acc;
                    let waited = t_start.saturating_sub(enq).as_nanos();
                    let meta = FrameMeta {
                        queue_ns: waited.saturating_sub(backoff_ns),
                        backoff_ns,
                        tx_ns: (end - t_start).as_nanos(),
                        attempts: self.nics[i].attempts,
                        trunk: 0,
                    };
                    self.nics[i].attempts = 0;
                    self.nics[i].backoff_until = SimTime::ZERO;
                    self.nics[i].backoff_acc = 0;
                    self.stats.busy_ns += (end - t_start).as_nanos();
                    self.current = Some(CurrentTx {
                        nic: i,
                        frame,
                        end,
                        meta,
                    });
                    self.free_at = end;
                }
            } else {
                // Collision: jam, then each collider backs off.
                self.stats.collisions += 1;
                if let Some((bin, series)) = &mut self.sampling {
                    series.window_mut(t_start.as_nanos() / *bin).collisions += 1;
                }
                let jam_end = t_start + self.cfg.collision_window + self.cfg.jam;
                self.free_at = jam_end;
                self.stats.busy_ns += (self.cfg.jam + self.cfg.collision_window).as_nanos();
                for &i in &starters {
                    let n = &mut self.nics[i];
                    n.attempts += 1;
                    if n.attempts > self.cfg.attempt_limit {
                        n.attempts = 0;
                        n.backoff_until = SimTime::ZERO;
                        n.backoff_acc = 0;
                        if let Some((frame, _)) = n.queue.pop_front() {
                            self.stats.frames_dropped += 1;
                            self.errors
                                .push((jam_end, frame, TxError::ExcessiveCollisions));
                        }
                    } else {
                        let exp = n.attempts.min(self.cfg.max_backoff_exp);
                        let k = self.rng.below(1u64 << exp);
                        n.backoff_until = jam_end + SimTime(self.cfg.slot.as_nanos() * k);
                        n.backoff_acc += self.cfg.slot.as_nanos() * k;
                        self.stats.backoffs += 1;
                    }
                }
                self.reroll_all_jitters();
            }
            Some(t_start)
        };
        self.starters = starters;
        result
    }

    /// Drain every pending MAC event, returning all deliveries. Useful in
    /// tests; the protocol layer instead interleaves `advance` with its own
    /// timers.
    pub fn run_to_idle(&mut self) -> Vec<Delivery> {
        let mut out = Vec::new();
        while self.advance(&mut out).is_some() {}
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameKind, HostId};

    fn bus(n: usize) -> EtherBus {
        let mut b = EtherBus::new(EtherConfig::default(), SimRng::new(1));
        for _ in 0..n {
            b.attach();
        }
        b
    }

    fn data(src: u32, dst: u32, payload: u32, token: u64) -> Frame {
        Frame::tcp(HostId(src), HostId(dst), FrameKind::Data, payload, token)
    }

    /// A bus with deterministic (zero) deference jitter for exact-timing
    /// assertions.
    fn exact_bus(n: usize) -> EtherBus {
        let cfg = EtherConfig {
            defer_jitter: SimTime::ZERO,
            ..EtherConfig::default()
        };
        let mut b = EtherBus::new(cfg, SimRng::new(1));
        for _ in 0..n {
            b.attach();
        }
        b
    }

    #[test]
    fn single_frame_delivery_time() {
        let mut b = exact_bus(2);
        b.enqueue(NicId(0), data(0, 1, 1460, 1), SimTime::ZERO);
        let out = b.run_to_idle();
        assert_eq!(out.len(), 1);
        // Starts after the initial IFG, occupies 1.2208 ms.
        assert_eq!(
            out[0].time,
            SimTime::from_nanos(9_600) + SimTime::from_nanos(1_220_800)
        );
        assert_eq!(out[0].frame.token, 1);
        assert!(b.idle());
    }

    #[test]
    fn back_to_back_frames_respect_ifg() {
        let mut b = exact_bus(2);
        b.enqueue(NicId(0), data(0, 1, 0, 1), SimTime::ZERO);
        b.enqueue(NicId(0), data(0, 1, 0, 2), SimTime::ZERO);
        let out = b.run_to_idle();
        assert_eq!(out.len(), 2);
        let gap = out[1].time - out[0].time;
        // Second frame begins one IFG after the first ends.
        assert_eq!(
            gap,
            SimTime::from_nanos(9_600) + data(0, 1, 0, 0).tx_time(10_000_000)
        );
    }

    #[test]
    fn deferring_station_waits_for_medium() {
        let mut b = bus(3);
        b.enqueue(NicId(0), data(0, 2, 1000, 1), SimTime::ZERO);
        let mut out = Vec::new();
        // Start NIC0's transmission.
        b.advance(&mut out);
        assert!(out.is_empty());
        // NIC1 becomes ready mid-transmission; it must defer.
        b.enqueue(NicId(1), data(1, 2, 0, 2), SimTime::from_micros(100));
        let all = b.run_to_idle();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].frame.token, 1);
        assert_eq!(all[1].frame.token, 2);
        assert!(all[1].time > all[0].time);
    }

    #[test]
    fn simultaneous_starters_collide_then_resolve() {
        // Zero jitter forces an exact tie → guaranteed collision.
        let mut b = exact_bus(3);
        // Both ready at t=0 → both attempt at IFG → collision.
        b.enqueue(NicId(0), data(0, 2, 100, 1), SimTime::ZERO);
        b.enqueue(NicId(1), data(1, 2, 100, 2), SimTime::ZERO);
        let out = b.run_to_idle();
        assert_eq!(out.len(), 2, "both frames eventually delivered");
        assert!(b.stats().collisions >= 1);
        assert_eq!(b.stats().frames_dropped, 0);
    }

    #[test]
    fn promiscuous_trace_records_every_delivery() {
        let mut b = bus(4);
        b.set_promiscuous(true);
        for i in 0..10u64 {
            b.enqueue(
                NicId((i % 3) as u32),
                data((i % 3) as u32, 3, 500, i),
                SimTime::ZERO,
            );
        }
        let out = b.run_to_idle();
        assert_eq!(out.len(), 10);
        assert_eq!(b.trace().len(), 10);
        let mut last = SimTime::ZERO;
        for r in b.trace() {
            assert!(r.time >= last);
            last = r.time;
            assert_eq!(r.wire_len, 58 + 500);
        }
    }

    #[test]
    fn tap_sees_every_delivery_without_perturbing_the_trace() {
        use std::sync::{Arc, Mutex};
        let run = |with_tap: bool| {
            let mut b = bus(4);
            b.set_promiscuous(true);
            let seen = Arc::new(Mutex::new(Vec::new()));
            if with_tap {
                let sink = Arc::clone(&seen);
                b.set_tap(Some(Box::new(move |r: &FrameRecord| {
                    sink.lock().unwrap().push(*r);
                })));
            }
            for i in 0..10u64 {
                b.enqueue(
                    NicId((i % 3) as u32),
                    data((i % 3) as u32, 3, 500, i),
                    SimTime::ZERO,
                );
            }
            b.run_to_idle();
            let tapped = std::mem::take(&mut *seen.lock().unwrap());
            (b.take_trace(), tapped)
        };
        let (plain, _) = run(false);
        let (traced, tapped) = run(true);
        assert_eq!(plain, traced, "tap must not perturb the trace");
        assert_eq!(tapped, traced, "tap sees exactly the captured records");
    }

    #[test]
    fn tap_fires_even_when_promiscuous_is_off() {
        use std::sync::{Arc, Mutex};
        let mut b = bus(2);
        let seen = Arc::new(Mutex::new(0usize));
        let sink = Arc::clone(&seen);
        b.set_tap(Some(Box::new(move |_: &FrameRecord| {
            *sink.lock().unwrap() += 1;
        })));
        for i in 0..5 {
            b.enqueue(NicId(0), data(0, 1, 100, i), SimTime::ZERO);
        }
        b.run_to_idle();
        assert_eq!(*seen.lock().unwrap(), 5);
        assert!(b.trace().is_empty(), "no trace without promiscuous mode");
    }

    #[test]
    fn aggregate_bandwidth_capped_at_line_rate() {
        // Saturate the bus from two stations and check goodput ≲ 1.25 MB/s.
        let mut b = bus(3);
        let nframes = 200u64;
        for i in 0..nframes {
            b.enqueue(
                NicId((i % 2) as u32),
                data((i % 2) as u32, 2, 1460, i),
                SimTime::ZERO,
            );
        }
        let out = b.run_to_idle();
        assert_eq!(out.len() as u64, nframes);
        let span = out.last().unwrap().time.as_secs_f64();
        let bytes: u64 = out.iter().map(|d| u64::from(d.frame.wire_len())).sum();
        let rate = bytes as f64 / span;
        assert!(rate < 1_250_000.0, "rate {rate} exceeds line rate");
        assert!(
            rate > 1_000_000.0,
            "rate {rate} suspiciously low for saturation"
        );
    }

    #[test]
    fn excessive_collisions_drop_frame() {
        // With attempt_limit 0 any collision drops both frames.
        let cfg = EtherConfig {
            attempt_limit: 0,
            defer_jitter: SimTime::ZERO,
            ..EtherConfig::default()
        };
        let mut b = EtherBus::new(cfg, SimRng::new(3));
        for _ in 0..2 {
            b.attach();
        }
        b.enqueue(NicId(0), data(0, 1, 10, 1), SimTime::ZERO);
        b.enqueue(NicId(1), data(1, 0, 10, 2), SimTime::ZERO);
        let out = b.run_to_idle();
        assert!(out.is_empty());
        assert_eq!(b.stats().frames_dropped, 2);
        assert_eq!(b.errors().len(), 2);
        assert!(matches!(b.errors()[0].2, TxError::ExcessiveCollisions));
    }

    #[test]
    fn lossy_bus_corrupts_some_frames() {
        let cfg = EtherConfig {
            drop_prob: 0.5,
            ..EtherConfig::default()
        };
        let mut b = EtherBus::new(cfg, SimRng::new(5));
        for _ in 0..2 {
            b.attach();
        }
        for i in 0..100 {
            b.enqueue(NicId(0), data(0, 1, 10, i), SimTime::ZERO);
        }
        let out = b.run_to_idle();
        let corrupted = b
            .errors()
            .iter()
            .filter(|e| matches!(e.2, TxError::Corrupted))
            .count();
        assert_eq!(out.len() + corrupted, 100);
        assert!(corrupted > 20 && corrupted < 80, "corrupted {corrupted}");
    }

    #[test]
    fn jitter_bounds_delivery_time() {
        // With default jitter the first frame starts within
        // [IFG, IFG + defer_jitter).
        let mut b = bus(2);
        b.enqueue(NicId(0), data(0, 1, 0, 1), SimTime::ZERO);
        let out = b.run_to_idle();
        let t = out[0].time;
        let min = SimTime::from_nanos(9_600) + data(0, 1, 0, 0).tx_time(10_000_000);
        assert!(t >= min, "{t} < {min}");
        assert!(t < min + SimTime::from_nanos(48_000));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut b = EtherBus::new(EtherConfig::default(), SimRng::new(seed));
            for _ in 0..4 {
                b.attach();
            }
            b.set_promiscuous(true);
            for i in 0..50u64 {
                b.enqueue(
                    NicId((i % 3) as u32),
                    data((i % 3) as u32, 3, (i * 37 % 1400) as u32, i),
                    SimTime::from_micros(i * 3),
                );
            }
            b.run_to_idle();
            b.take_trace()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn link_sampling_does_not_perturb_and_conserves_bytes() {
        let run = |sample: bool| {
            let mut b = bus(4);
            b.set_promiscuous(true);
            if sample {
                b.set_link_sampling(Some(1_000_000));
            }
            for i in 0..40u64 {
                b.enqueue(
                    NicId((i % 3) as u32),
                    data((i % 3) as u32, 3, 700, i),
                    SimTime::from_micros(i * 11),
                );
            }
            b.run_to_idle();
            let series = b.take_link_series();
            (b.take_trace(), b.stats(), series)
        };
        let (plain, _, none) = run(false);
        let (sampled, stats, series) = run(true);
        assert!(none.is_none());
        assert_eq!(plain, sampled, "sampling must not perturb the trace");
        let s = series.expect("sampling enabled");
        let total = s.total();
        assert_eq!(total.bytes, stats.bytes_delivered);
        assert_eq!(total.frames, stats.frames_delivered);
        assert_eq!(total.collisions, stats.collisions);
        assert!(total.depth_max >= 1);
        assert!(s.len() >= 2, "windows spread over the run");
    }

    #[test]
    fn busy_time_less_than_span() {
        let mut b = bus(2);
        for i in 0..20 {
            b.enqueue(NicId(0), data(0, 1, 1000, i), SimTime::ZERO);
        }
        let out = b.run_to_idle();
        let span = out.last().unwrap().time.as_nanos();
        assert!(b.stats().busy_ns <= span);
        assert!(b.stats().busy_ns > 0);
    }
}
