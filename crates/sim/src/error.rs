//! Typed errors for the simulation stack.
//!
//! The hot paths of `fxnet-sim` and the SPMD engine historically aborted
//! with `panic!`/`unwrap`; a parallel harness cannot afford that — one
//! poisoned worker would take the whole sweep down. [`FxnetError`] is the
//! single error vocabulary shared by every layer: the simulator (queue
//! underflow, capacity), the engine (invalid config, deadlock, runaway
//! clocks), and trace persistence (I/O).
//!
//! Display strings are stable: the deprecated panicking wrappers format
//! an error with `{}` and `panic!` with the result, so callers that
//! matched on panic messages ("SPMD deadlock", "max_sim_time") keep
//! working unchanged.

use crate::time::SimTime;

/// Everything that can go wrong in a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FxnetError {
    /// A configuration that cannot be simulated (p = 0, hosts < p,
    /// empty group list, zero bandwidth, ...).
    InvalidConfig(String),
    /// A fixed-capacity structure overflowed (NIC queue, token table).
    CapacityExceeded(String),
    /// An event queue was popped while empty, or an internal invariant
    /// about pending events failed.
    QueueUnderflow(String),
    /// No rank can run and the network is idle: the SPMD program is
    /// deadlocked (e.g. a `recv` nobody will ever satisfy).
    Deadlock(String),
    /// A rank's clock passed [`max_sim_time`](SimTime) — the runaway
    /// guard against non-terminating programs.
    SimTimeExceeded {
        /// The offending (global) rank.
        rank: u32,
        /// Its clock when the guard tripped.
        at: SimTime,
        /// The configured limit.
        limit: SimTime,
    },
    /// Trace or artifact I/O failed.
    Io(String),
}

impl std::fmt::Display for FxnetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FxnetError::InvalidConfig(s) => write!(f, "invalid configuration: {s}"),
            FxnetError::CapacityExceeded(s) => write!(f, "capacity exceeded: {s}"),
            FxnetError::QueueUnderflow(s) => write!(f, "queue underflow: {s}"),
            FxnetError::Deadlock(s) => {
                write!(f, "SPMD deadlock: no runnable rank and network idle\n{s}")
            }
            FxnetError::SimTimeExceeded { rank, at, limit } => {
                write!(
                    f,
                    "rank {rank} exceeded max_sim_time at {at} (limit {limit})"
                )
            }
            FxnetError::Io(s) => write!(f, "I/O error: {s}"),
        }
    }
}

impl std::error::Error for FxnetError {}

impl From<std::io::Error> for FxnetError {
    fn from(e: std::io::Error) -> Self {
        FxnetError::Io(e.to_string())
    }
}

/// The stack-wide result alias.
pub type FxnetResult<T> = Result<T, FxnetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings_are_stable_for_panic_compat() {
        // The deprecated engine wrappers panic with `{}` of these; the
        // substrings below are load-bearing for #[should_panic] callers.
        let d = FxnetError::Deadlock("rank 0: BlockedRecv(1) at 0ns".into());
        assert!(d.to_string().contains("SPMD deadlock"));
        let t = FxnetError::SimTimeExceeded {
            rank: 3,
            at: SimTime::from_secs(2),
            limit: SimTime::from_secs(1),
        };
        assert!(t.to_string().contains("max_sim_time"));
        assert!(t.to_string().contains("rank 3"));
    }

    #[test]
    fn io_errors_convert() {
        let e: FxnetError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, FxnetError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
