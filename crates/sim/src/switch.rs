//! Switched Ethernet — the counterfactual fabric.
//!
//! The paper's LAN is a single shared collision domain; its successor
//! technology gives every station a dedicated full-duplex port into a
//! store-and-forward switch with output queuing. This module provides
//! that fabric behind the same pull interface as [`crate::EtherBus`], as
//! an *ablation*: running the same programs over both answers how much of
//! the measured burst shaping is CSMA/CD contention versus program
//! structure (DESIGN.md §8).
//!
//! Model: each frame occupies its source's uplink for one transmission
//! time, arrives at the switch, then occupies the destination's downlink
//! for another transmission time, queuing FIFO behind earlier arrivals
//! for the same output port. No collisions, no backoff; concurrent
//! transfers between disjoint host pairs proceed in parallel.

use crate::cause::FrameMeta;
use crate::ethernet::Delivery;
use crate::frame::{Frame, FrameRecord, FrameTap};
use crate::queue::EventQueue;
use crate::time::SimTime;

/// Configuration of the switched fabric.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Per-port rate in bits/second (default matches the bus: 10 Mb/s).
    pub port_bps: u64,
    /// Fixed switching latency added between uplink completion and the
    /// start of the downlink transmission.
    pub forward_latency: SimTime,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            port_bps: crate::rates::RATE_10M,
            forward_latency: SimTime::from_micros(10),
        }
    }
}

enum Event {
    /// Frame fully received by the switch; ready for output queuing.
    /// Carries the uplink queueing delay accumulated so far (bookkeeping
    /// for [`FrameMeta`] only; never consulted by the schedule).
    AtSwitch(Frame, u64),
    /// Frame fully transmitted on the destination port.
    Delivered(Frame, FrameMeta),
}

/// A store-and-forward switch with one full-duplex port per host.
pub struct SwitchFabric {
    cfg: SwitchConfig,
    /// Next instant each host's uplink is free.
    uplink_free: Vec<SimTime>,
    /// Next instant each host's downlink is free.
    downlink_free: Vec<SimTime>,
    events: EventQueue<Event>,
    promiscuous: bool,
    trace: Vec<FrameRecord>,
    tap: Option<FrameTap>,
    frames_delivered: u64,
    bytes_delivered: u64,
}

impl SwitchFabric {
    /// A switch with `ports` host ports.
    pub fn new(cfg: SwitchConfig, ports: usize) -> SwitchFabric {
        SwitchFabric {
            cfg,
            uplink_free: vec![SimTime::ZERO; ports],
            downlink_free: vec![SimTime::ZERO; ports],
            events: EventQueue::new(),
            promiscuous: false,
            trace: Vec::new(),
            tap: None,
            frames_delivered: 0,
            bytes_delivered: 0,
        }
    }

    /// Number of host ports.
    pub fn port_count(&self) -> usize {
        self.uplink_free.len()
    }

    /// Enable the monitoring tap (a mirror port).
    pub fn set_promiscuous(&mut self, on: bool) {
        self.promiscuous = on;
    }

    /// Install (or remove) a live frame tap at the mirror port — same
    /// contract as [`crate::EtherBus::set_tap`].
    pub fn set_tap(&mut self, tap: Option<FrameTap>) {
        self.tap = tap;
    }

    /// Captured trace so far.
    pub fn trace(&self) -> &[FrameRecord] {
        &self.trace
    }

    /// Take ownership of the captured trace.
    pub fn take_trace(&mut self) -> Vec<FrameRecord> {
        std::mem::take(&mut self.trace)
    }

    /// Delivered frame/byte counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.frames_delivered, self.bytes_delivered)
    }

    /// Queue a frame from its source host at time `now`. The uplink
    /// serializes this host's frames; the transfer itself is scheduled
    /// immediately since nothing later can affect it.
    pub fn enqueue(&mut self, frame: Frame, now: SimTime) {
        let src = frame.src.0 as usize;
        let tx = frame.tx_time(self.cfg.port_bps);
        let start = self.uplink_free[src].max(now);
        let at_switch = start + tx;
        self.uplink_free[src] = at_switch;
        self.events.push(
            at_switch + self.cfg.forward_latency,
            Event::AtSwitch(frame, (start - now).as_nanos()),
        );
    }

    /// Whether nothing is pending.
    pub fn idle(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the next fabric event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Process exactly one fabric event, appending any delivered frame.
    pub fn advance(&mut self, out: &mut Vec<Delivery>) -> Option<SimTime> {
        let (t, ev) = self.events.pop()?;
        match ev {
            Event::AtSwitch(frame, uplink_wait) => {
                let dst = frame.dst.0 as usize;
                let tx = frame.tx_time(self.cfg.port_bps);
                let start = self.downlink_free[dst].max(t);
                let done = start + tx;
                self.downlink_free[dst] = done;
                let meta = FrameMeta {
                    queue_ns: uplink_wait + (start - t).as_nanos(),
                    backoff_ns: 0,
                    // Store-and-forward: the frame crosses two serialized
                    // links, so wire occupancy is two transmissions.
                    tx_ns: 2 * tx.as_nanos(),
                    attempts: 0,
                    trunk: 0,
                };
                self.events.push(done, Event::Delivered(frame, meta));
            }
            Event::Delivered(frame, meta) => {
                self.frames_delivered += 1;
                self.bytes_delivered += u64::from(frame.wire_len());
                if self.promiscuous || self.tap.is_some() {
                    let record = FrameRecord::capture(t, &frame);
                    if let Some(tap) = &mut self.tap {
                        tap(&record);
                    }
                    if self.promiscuous {
                        self.trace.push(record);
                    }
                }
                out.push(Delivery {
                    time: t,
                    frame,
                    meta,
                });
            }
        }
        Some(t)
    }

    /// Drain every pending event (test helper).
    pub fn run_to_idle(&mut self) -> Vec<Delivery> {
        let mut out = Vec::new();
        while self.advance(&mut out).is_some() {}
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameKind, HostId};

    fn data(src: u32, dst: u32, payload: u32, token: u64) -> Frame {
        Frame::tcp(HostId(src), HostId(dst), FrameKind::Data, payload, token)
    }

    fn fabric(n: usize) -> SwitchFabric {
        SwitchFabric::new(SwitchConfig::default(), n)
    }

    #[test]
    fn single_frame_latency_is_two_transmissions() {
        let mut f = fabric(2);
        f.enqueue(data(0, 1, 1460, 1), SimTime::ZERO);
        let out = f.run_to_idle();
        assert_eq!(out.len(), 1);
        // Store-and-forward: 2 × 1.2208 ms + 10 µs forwarding.
        assert_eq!(out[0].time, SimTime::from_nanos(2 * 1_220_800 + 10_000));
    }

    #[test]
    fn disjoint_pairs_transfer_in_parallel() {
        let mut f = fabric(4);
        f.enqueue(data(0, 1, 1460, 1), SimTime::ZERO);
        f.enqueue(data(2, 3, 1460, 2), SimTime::ZERO);
        let out = f.run_to_idle();
        assert_eq!(out.len(), 2);
        // Both complete at the same instant: no shared-medium serialization.
        assert_eq!(out[0].time, out[1].time);
    }

    #[test]
    fn output_port_contention_serializes() {
        let mut f = fabric(3);
        f.enqueue(data(0, 2, 1460, 1), SimTime::ZERO);
        f.enqueue(data(1, 2, 1460, 2), SimTime::ZERO);
        let out = f.run_to_idle();
        assert_eq!(out.len(), 2);
        let gap = out[1].time - out[0].time;
        // Second frame waits exactly one downlink transmission.
        assert_eq!(gap, data(0, 2, 1460, 0).tx_time(10_000_000));
    }

    #[test]
    fn uplink_serializes_one_senders_frames() {
        let mut f = fabric(3);
        f.enqueue(data(0, 1, 1460, 1), SimTime::ZERO);
        f.enqueue(data(0, 2, 1460, 2), SimTime::ZERO);
        let out = f.run_to_idle();
        // Different destinations, same source: staggered by one uplink tx.
        let gap = out[1].time - out[0].time;
        assert_eq!(gap, data(0, 1, 1460, 0).tx_time(10_000_000));
    }

    #[test]
    fn aggregate_throughput_exceeds_bus_line_rate() {
        // Two disjoint saturated pairs → ~2× the shared bus's capacity.
        let mut f = fabric(4);
        for i in 0..100u64 {
            f.enqueue(data(0, 1, 1460, i), SimTime::ZERO);
            f.enqueue(data(2, 3, 1460, 100 + i), SimTime::ZERO);
        }
        let out = f.run_to_idle();
        let span = out.last().unwrap().time.as_secs_f64();
        let bytes: u64 = out.iter().map(|d| u64::from(d.frame.wire_len())).sum();
        let rate = bytes as f64 / span;
        assert!(rate > 2_000_000.0, "aggregate {rate:.0} B/s");
    }

    #[test]
    fn trace_captured_in_delivery_order() {
        let mut f = fabric(4);
        f.set_promiscuous(true);
        for i in 0..20u64 {
            f.enqueue(
                data((i % 3) as u32, 3, 500, i),
                SimTime::from_micros(i * 37),
            );
        }
        f.run_to_idle();
        assert_eq!(f.trace().len(), 20);
        assert!(f.trace().windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(f.stats().0, 20);
    }
}
