//! Passive per-link sample windows — the raw feed of the fabric weather
//! map (`fxnet-metrics`).
//!
//! A [`LinkProbe`] rides next to a link's existing accounting and folds
//! every completed transmission into the sample window (fixed simulated
//! duration, default 1 ms) the completion lands in. Sampling is strictly
//! read-only with respect to the simulation: it draws no random numbers,
//! schedules no events, and never touches frame timing, so a sampled run
//! produces a byte-identical trace to an unsampled one. Windows are kept
//! sparse — only windows that saw traffic exist — in a sorted map, so
//! export order is deterministic and idle links cost nothing.

use crate::time::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// One sample window of one link (direction): everything the weather map
/// gauges need, folded additively (`depth_max` by max).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LinkWindow {
    /// Wire bytes whose transmission completed in this window.
    pub bytes: u64,
    /// Frames whose transmission completed in this window.
    pub frames: u64,
    /// Wire occupancy contributed by those frames, ns.
    pub busy_ns: u64,
    /// Queueing (waiting for the link/medium) those frames accumulated, ns.
    pub wait_ns: u64,
    /// CSMA/CD backoff those frames accumulated, ns (segments only).
    pub backoff_ns: u64,
    /// Collision events observed in this window (segments only).
    pub collisions: u64,
    /// Wire bytes of retransmitted frames (attributed post-run from the
    /// causal capture; always 0 in the live sampler).
    pub retx_bytes: u64,
    /// High-water queue depth observed in this window (frames).
    pub depth_max: u32,
}

impl LinkWindow {
    /// Fold another window into this one: counters add, the high-water
    /// depth takes the max. This is the *exact* downsampling rule the
    /// multi-resolution rings in `fxnet-metrics` are proptested against.
    pub fn fold(&mut self, o: &LinkWindow) {
        self.bytes += o.bytes;
        self.frames += o.frames;
        self.busy_ns += o.busy_ns;
        self.wait_ns += o.wait_ns;
        self.backoff_ns += o.backoff_ns;
        self.collisions += o.collisions;
        self.retx_bytes += o.retx_bytes;
        self.depth_max = self.depth_max.max(o.depth_max);
    }

    /// Utilization fraction of a window of `window_ns`: wire occupancy
    /// over wall time. Can exceed 1.0 when several completions charged
    /// to one window carry occupancy that straddled its edges.
    pub fn utilization(&self, window_ns: u64) -> f64 {
        if window_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / window_ns as f64
        }
    }
}

/// Sparse window series of one link (direction): window index → stats,
/// sorted, only touched windows present.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkSeries {
    bins: BTreeMap<u64, LinkWindow>,
}

impl LinkSeries {
    /// An empty series.
    pub fn new() -> LinkSeries {
        LinkSeries::default()
    }

    /// The (created-on-first-touch) window at index `w`.
    pub fn window_mut(&mut self, w: u64) -> &mut LinkWindow {
        self.bins.entry(w).or_default()
    }

    /// Sorted iteration over the touched windows.
    pub fn windows(&self) -> impl Iterator<Item = (u64, &LinkWindow)> {
        self.bins.iter().map(|(&w, s)| (w, s))
    }

    /// Number of touched windows.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether no window was ever touched.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Exact fold of every touched window.
    pub fn total(&self) -> LinkWindow {
        let mut t = LinkWindow::default();
        for s in self.bins.values() {
            t.fold(s);
        }
        t
    }
}

/// A sampler for one link (direction) whose occupancy is modeled as a
/// free-time scalar (switch/router ports, trunks): completed
/// transmissions are charged to the window their completion lands in,
/// and the queue depth is reconstructed from the in-flight completion
/// times.
#[derive(Debug, Clone, Default)]
pub struct LinkProbe {
    series: LinkSeries,
    /// Completion instants of transmissions not yet finished at the last
    /// observation — the link's queue, oldest first.
    pending: VecDeque<SimTime>,
}

impl LinkProbe {
    /// An empty probe.
    pub fn new() -> LinkProbe {
        LinkProbe::default()
    }

    /// Record one transmission: requested at `now`, occupying the link
    /// until `done`, `wire` bytes over `tx_ns` of wire time after
    /// `wait_ns` of queueing.
    pub fn record(
        &mut self,
        bin_ns: u64,
        now: SimTime,
        done: SimTime,
        wire: u64,
        tx_ns: u64,
        wait_ns: u64,
    ) {
        while self.pending.front().is_some_and(|&d| d <= now) {
            self.pending.pop_front();
        }
        self.pending.push_back(done);
        let depth = self.pending.len() as u32;
        let w = self.series.window_mut(done.as_nanos() / bin_ns.max(1));
        w.bytes += wire;
        w.frames += 1;
        w.busy_ns += tx_ns;
        w.wait_ns += wait_ns;
        w.depth_max = w.depth_max.max(depth);
    }

    /// Take the accumulated series, resetting the probe.
    pub fn take(&mut self) -> LinkSeries {
        self.pending.clear();
        std::mem::take(&mut self.series)
    }
}

/// The complete per-link sample set of one run: the base window size and
/// every sampled link's series, labeled (`trunk:n0-n1:fwd`, `seg:seg0`,
/// `host:h3:up`, ...), in a fixed deterministic order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Base sample window, ns.
    pub bin_ns: u64,
    /// `(label, series)` per sampled link direction.
    pub links: Vec<(String, LinkSeries)>,
}

impl LinkStats {
    /// The series labeled `label`, if sampled.
    pub fn series(&self, label: &str) -> Option<&LinkSeries> {
        self.links.iter().find(|(l, _)| l == label).map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_sparse_and_sorted() {
        let mut s = LinkSeries::new();
        s.window_mut(7).bytes += 10;
        s.window_mut(2).bytes += 5;
        s.window_mut(7).frames += 1;
        let got: Vec<(u64, u64)> = s.windows().map(|(w, v)| (w, v.bytes)).collect();
        assert_eq!(got, vec![(2, 5), (7, 10)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.total().bytes, 15);
        assert_eq!(s.total().frames, 1);
    }

    #[test]
    fn fold_adds_counters_and_maxes_depth() {
        let mut a = LinkWindow {
            bytes: 1,
            frames: 1,
            busy_ns: 10,
            wait_ns: 3,
            backoff_ns: 2,
            collisions: 1,
            retx_bytes: 0,
            depth_max: 4,
        };
        let b = LinkWindow {
            bytes: 2,
            frames: 1,
            busy_ns: 5,
            wait_ns: 0,
            backoff_ns: 0,
            collisions: 0,
            retx_bytes: 7,
            depth_max: 2,
        };
        a.fold(&b);
        assert_eq!(a.bytes, 3);
        assert_eq!(a.busy_ns, 15);
        assert_eq!(a.retx_bytes, 7);
        assert_eq!(a.depth_max, 4);
    }

    #[test]
    fn probe_reconstructs_queue_depth() {
        let mut p = LinkProbe::new();
        let ms = |n: u64| SimTime::from_millis(n);
        // Three back-to-back transmissions requested at t=0: queue
        // builds to 3.
        p.record(1_000_000, ms(0), ms(1), 100, 1_000_000, 0);
        p.record(1_000_000, ms(0), ms(2), 100, 1_000_000, 1_000_000);
        p.record(1_000_000, ms(0), ms(3), 100, 1_000_000, 2_000_000);
        // A later one after the queue drained: depth back to 1.
        p.record(1_000_000, ms(10), ms(11), 100, 1_000_000, 0);
        let s = p.take();
        let depths: Vec<u32> = s.windows().map(|(_, w)| w.depth_max).collect();
        assert_eq!(depths, vec![1, 2, 3, 1]);
        assert_eq!(s.total().bytes, 400);
    }

    #[test]
    fn utilization_is_busy_over_window() {
        let w = LinkWindow {
            busy_ns: 800_000,
            ..LinkWindow::default()
        };
        assert!((w.utilization(1_000_000) - 0.8).abs() < 1e-12);
        assert_eq!(LinkWindow::default().utilization(0), 0.0);
    }
}
