//! The weather map's non-perturbation contract, end to end: attaching
//! the full sampler (frame tap + per-link sampling + causal capture)
//! to a kernel run leaves the promiscuous packet trace byte-identical,
//! on the shared segment and on the oversubscribed two-switch fabric,
//! across seeds — while still producing a populated report.

use fxnet::TestbedBuilder;
use fxnet_apps::KernelKind;
use fxnet_fx::RunOptions;
use fxnet_metrics::FabricSampler;
use fxnet_sim::RATE_10M;
use fxnet_topo::TopologySpec;

fn topologies() -> Vec<Option<TopologySpec>> {
    vec![
        None, // the seed's single shared segment
        Some(TopologySpec::two_switches_trunk(4, RATE_10M)),
    ]
}

#[test]
fn sampler_attach_detach_leaves_traces_byte_identical() {
    for kernel in KernelKind::ALL {
        for spec in topologies() {
            for seed in [1998u64, 7] {
                let mut b = TestbedBuilder::quiet(4).seed(seed);
                if let Some(spec) = &spec {
                    b = b.topology(spec.clone());
                }
                let tb = b.build();
                let plain = tb.run_kernel(kernel, 200).unwrap();

                let sampler = FabricSampler::new();
                let opts = RunOptions {
                    tap: Some(sampler.tap()),
                    causal: true,
                    sample_links: Some(sampler.bin_ns()),
                    ..RunOptions::default()
                };
                let sampled = tb.run_kernel_opts(kernel, 200, opts).unwrap();

                assert_eq!(
                    plain.trace,
                    sampled.trace,
                    "{kernel:?} topo={:?} seed={seed}: sampler perturbed the trace",
                    spec.as_ref().map(|s| s.id.clone()),
                );
                assert_eq!(plain.results, sampled.results);
                assert_eq!(plain.finished_at, sampled.finished_at);

                // And the observability side actually observed: rings
                // fed, matrices fed, totals conserved against the trace.
                let mut sampler = sampler;
                let stats = sampled.link_stats.as_ref().expect("link stats on");
                sampler.ingest_links(stats);
                sampler.ingest_causal(
                    &sampled.causal.as_ref().expect("causal on").events,
                    spec.as_ref(),
                );
                let report = sampler.finalize(spec.as_ref());
                assert!(!report.rings.is_empty());
                for (label, ring) in &report.rings {
                    ring.check_consistency()
                        .unwrap_or_else(|e| panic!("{label}: {e}"));
                }
                let traced: u64 = plain.trace.len() as u64;
                assert_eq!(
                    report.scaling[0].total_packets, traced,
                    "tap saw every delivered frame exactly once"
                );
            }
        }
    }
}
