//! # fxnet-metrics
//!
//! The fabric weather map: zero-perturbation observability for the
//! simulated LAN. Everything here is fed by passive observation
//! channels — the promiscuous [`fxnet_sim::FrameTap`], the engine's
//! per-link sample series, and the post-run causal capture — so a run
//! with the weather map attached produces a byte-identical packet
//! trace to one without it.
//!
//! Three layers:
//!
//! * **Rings** ([`MultiResRing`]): per link direction, utilization /
//!   queue-depth / backoff / collision / retransmit gauges in a
//!   hierarchical ring of rings downsampling 1 ms → 10 ms → 100 ms →
//!   1 s, every coarse bucket the *exact* fold of its fine buckets
//!   (proptested — [`fxnet_sim::LinkWindow::fold`] is the one rule).
//! * **Matrices** ([`TrafficMatrices`]): hypersparse per-window
//!   src×dst traffic matrices over the sorted host-pair id space, with
//!   per-scale [`ScalingRelation`] summaries, Kepner style.
//! * **Rollup** ([`rollup`]): topology-aware link → node → fabric
//!   aggregation and hotspot flagging — over threshold for `k`
//!   consecutive windows, latched through the same
//!   [`fxnet_trace::StreakLatch`] the bandwidth watcher uses, named to
//!   match causal `blocking_link` labels for interval cross-checks.
//!
//! [`FabricSampler`] ties the channels together; [`export`] renders
//! deterministic JSON / JSONL / Prometheus / Perfetto-counter
//! artifacts.

pub mod export;
pub mod matrix;
pub mod rings;
pub mod rollup;
pub mod sampler;

pub use export::{
    counter_events, fill_registry, fill_registry_labeled, report_jsonl, report_value,
};
pub use matrix::{
    MatrixAccum, PairSpace, ScalingAccum, ScalingRelation, TrafficMatrices, WindowMatrix,
};
pub use rings::{MultiResRing, DEFAULT_SCALES};
pub use rollup::{
    rollup, strip_direction, windows_to_intervals, FabricRollup, GroupHealth, Hotspot,
    HotspotConfig, LinkHealth,
};
pub use sampler::{FabricSampler, SamplerConfig, WeatherReport};
