//! Topology-aware health rollup: link → node → fabric, plus hotspot
//! flagging with the same latch discipline the bandwidth watcher uses.
//!
//! A link direction is *over* in a detection window when its utilization
//! or its high-water queue depth crosses the configured threshold; a
//! link becomes a flagged **hotspot** when it stays over for `k`
//! consecutive windows (untouched windows are idle, hence under). The
//! flag latches through [`fxnet_trace::StreakLatch`] — the exact
//! mechanism behind watcher contract violations — so "flagged" means
//! the same thing in both reports: breached persistently, reported
//! once. Hotspots are named by direction-stripped link (`trunk:n0-n1`,
//! not `trunk:n0-n1:fwd`), matching the `blocking_link` labels the
//! causal critical paths blame, so the weather map and the provenance
//! report can be cross-checked interval against interval.

use crate::rings::MultiResRing;
use fxnet_sim::{LinkWindow, SimTime};
use fxnet_topo::{NodeKind, TopologySpec};
use fxnet_trace::StreakLatch;

/// Hotspot detection parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HotspotConfig {
    /// Ring level used for detection (index into the ladder; 1 = 10 ms
    /// at the default base).
    pub level: usize,
    /// Utilization fraction at or above which a window is over.
    pub util_threshold: f64,
    /// High-water queue depth (frames) at or above which a window is
    /// over.
    pub depth_threshold: u32,
    /// Consecutive over windows required to latch the flag.
    pub k: usize,
}

impl Default for HotspotConfig {
    fn default() -> HotspotConfig {
        HotspotConfig {
            level: 1,
            util_threshold: 0.85,
            depth_threshold: 8,
            k: 4,
        }
    }
}

/// One link direction's health summary at the detection resolution.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinkHealth {
    /// Full direction label (`trunk:n0-n1:fwd`, `seg:seg0`, ...).
    pub label: String,
    /// Detection window width, ns.
    pub window_ns: u64,
    /// Touched detection windows.
    pub windows: u64,
    /// Exact fold of the whole run.
    pub total: LinkWindow,
    /// Highest single-window utilization.
    pub peak_utilization: f64,
    /// Mean utilization over touched windows.
    pub mean_utilization: f64,
    /// Highest high-water queue depth.
    pub peak_depth: u32,
}

/// Aggregated health of a group of link directions (a topology node, or
/// the whole fabric).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GroupHealth {
    /// Group name: the node's display name, or `fabric`.
    pub name: String,
    /// Member link labels, in rollup order.
    pub members: Vec<String>,
    /// Exact fold of every member's run total.
    pub total: LinkWindow,
    /// Highest single-window utilization across members.
    pub peak_utilization: f64,
    /// Highest queue depth across members.
    pub peak_depth: u32,
}

/// A latched hotspot: one link (direction-stripped) that stayed over
/// threshold for at least `k` consecutive detection windows.
/// (Exported through [`crate::export`]'s hand-built JSON — the interval
/// tuples have no derive support in the offline serde shim.)
#[derive(Debug, Clone, PartialEq)]
pub struct Hotspot {
    /// Direction-stripped link label (`trunk:n0-n1`, `seg:seg0`,
    /// `host:h3`), comparable to causal `blocking_link` names.
    pub link: String,
    /// Simulated time the flag latched (end of the k-th window of the
    /// first qualifying streak).
    pub flagged_at: SimTime,
    /// All flagged window indices (detection level), ascending — every
    /// window belonging to a streak of length ≥ k, both directions
    /// merged.
    pub windows: Vec<u64>,
    /// The flagged windows as merged half-open simulated-time
    /// intervals, ready for overlap checks against causal
    /// `contended_intervals`.
    pub intervals: Vec<(SimTime, SimTime)>,
    /// Highest utilization inside the flagged windows.
    pub peak_utilization: f64,
    /// Highest queue depth inside the flagged windows.
    pub peak_depth: u32,
}

/// The complete rollup: per-direction health, per-node and fabric
/// aggregates, and the latched hotspots.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricRollup {
    /// Detection window width, ns.
    pub window_ns: u64,
    /// Per link direction, in sampler order.
    pub links: Vec<LinkHealth>,
    /// Per topology node (when a spec was given), in node order.
    pub nodes: Vec<GroupHealth>,
    /// The whole fabric.
    pub fabric: GroupHealth,
    /// Latched hotspots, in first-flagged order (ties by label).
    pub hotspots: Vec<Hotspot>,
}

/// Strip a trailing direction suffix from a link label.
pub fn strip_direction(label: &str) -> &str {
    for suffix in [":fwd", ":rev", ":up", ":down"] {
        if let Some(base) = label.strip_suffix(suffix) {
            return base;
        }
    }
    label
}

/// Maximal runs of `true` with length ≥ k over a dense window walk of
/// `[lo, hi]`; `over(w)` decides each window (untouched ⇒ under).
fn streaks(lo: u64, hi: u64, k: usize, mut over: impl FnMut(u64) -> bool) -> Vec<(u64, u64)> {
    let mut runs = Vec::new();
    let mut start: Option<u64> = None;
    for w in lo..=hi {
        if over(w) {
            start.get_or_insert(w);
        } else if let Some(s) = start.take() {
            if (w - s) as usize >= k {
                runs.push((s, w - 1));
            }
        }
    }
    if let Some(s) = start {
        if (hi + 1 - s) as usize >= k {
            runs.push((s, hi));
        }
    }
    runs
}

/// Build the full rollup from the sampler's rings. With a topology
/// spec, links are grouped under their nodes (a trunk belongs to both
/// endpoints); without one, only per-link and fabric aggregates are
/// produced.
pub fn rollup(
    rings: &[(String, MultiResRing)],
    spec: Option<&TopologySpec>,
    cfg: &HotspotConfig,
) -> FabricRollup {
    let window_ns = rings
        .first()
        .map_or(0, |(_, r)| r.level_bin_ns(cfg.level.min(r.depth() - 1)));

    let mut links = Vec::new();
    for (label, ring) in rings {
        let level = cfg.level.min(ring.depth() - 1);
        let wns = ring.level_bin_ns(level);
        let mut peak_util = 0.0f64;
        let mut util_sum = 0.0f64;
        let mut peak_depth = 0u32;
        let mut n = 0u64;
        for (_, w) in ring.windows(level) {
            let u = w.utilization(wns);
            peak_util = peak_util.max(u);
            util_sum += u;
            peak_depth = peak_depth.max(w.depth_max);
            n += 1;
        }
        links.push(LinkHealth {
            label: label.clone(),
            window_ns: wns,
            windows: n,
            total: ring.total(),
            peak_utilization: peak_util,
            mean_utilization: if n == 0 { 0.0 } else { util_sum / n as f64 },
            peak_depth,
        });
    }

    let group = |name: &str, members: Vec<usize>| -> GroupHealth {
        let mut total = LinkWindow::default();
        let mut peak_utilization = 0.0f64;
        let mut peak_depth = 0u32;
        let mut labels = Vec::new();
        for &i in &members {
            total.fold(&links[i].total);
            peak_utilization = peak_utilization.max(links[i].peak_utilization);
            peak_depth = peak_depth.max(links[i].peak_depth);
            labels.push(links[i].label.clone());
        }
        GroupHealth {
            name: name.to_string(),
            members: labels,
            total,
            peak_utilization,
            peak_depth,
        }
    };

    let mut nodes = Vec::new();
    if let Some(spec) = spec {
        for (ni, node) in spec.nodes.iter().enumerate() {
            let mut members = Vec::new();
            for (li, lh) in links.iter().enumerate() {
                let base = strip_direction(&lh.label);
                let member = if let Some(seg) = base.strip_prefix("seg:") {
                    seg == node.name
                } else if let Some(pair) = base.strip_prefix("trunk:") {
                    // A trunk rolls up to both of its endpoint nodes.
                    spec.trunks
                        .iter()
                        .any(|t| (t.a == ni || t.b == ni) && pair == format!("n{}-n{}", t.a, t.b))
                } else if let Some(host) = base.strip_prefix("host:h") {
                    matches!(node.kind, NodeKind::Switch | NodeKind::Router)
                        && host
                            .parse::<usize>()
                            .is_ok_and(|h| spec.attachments.get(h) == Some(&ni))
                } else {
                    false
                };
                if member {
                    members.push(li);
                }
            }
            nodes.push(group(&node.name, members));
        }
    }
    let fabric = group("fabric", (0..links.len()).collect());

    // Hotspot detection: per direction, dense walk of the detection
    // level; then merge directions of the same stripped link.
    let mut flagged: Vec<Hotspot> = Vec::new();
    for (label, ring) in rings {
        let level = cfg.level.min(ring.depth() - 1);
        let wns = ring.level_bin_ns(level);
        let bounds = {
            let mut it = ring.windows(level).map(|(w, _)| w);
            let lo = it.next();
            lo.map(|lo| (lo, ring.windows(level).map(|(w, _)| w).last().unwrap_or(lo)))
        };
        let Some((lo, hi)) = bounds else { continue };
        let over = |w: u64| {
            ring.bucket(level, w).is_some_and(|win| {
                win.utilization(wns) >= cfg.util_threshold || win.depth_max >= cfg.depth_threshold
            })
        };
        let runs = streaks(lo, hi, cfg.k.max(1), over);
        if runs.is_empty() {
            continue;
        }
        // Replay the latch for the flag instant: it fires exactly once,
        // at the end of the k-th consecutive over window.
        let mut latch = StreakLatch::new(cfg.k.max(1));
        let mut flagged_at = None;
        for w in lo..=hi {
            if latch.update(over(w)) {
                flagged_at = Some(SimTime::from_nanos((w + 1) * wns));
                break;
            }
        }
        let mut windows = Vec::new();
        let mut peak_utilization = 0.0f64;
        let mut peak_depth = 0u32;
        for &(s, e) in &runs {
            for w in s..=e {
                windows.push(w);
                if let Some(win) = ring.bucket(level, w) {
                    peak_utilization = peak_utilization.max(win.utilization(wns));
                    peak_depth = peak_depth.max(win.depth_max);
                }
            }
        }
        let link = strip_direction(label).to_string();
        match flagged.iter_mut().find(|h| h.link == link) {
            Some(h) => {
                h.flagged_at = h.flagged_at.min(flagged_at.expect("runs imply latch"));
                h.windows.extend(&windows);
                h.windows.sort_unstable();
                h.windows.dedup();
                h.peak_utilization = h.peak_utilization.max(peak_utilization);
                h.peak_depth = h.peak_depth.max(peak_depth);
            }
            None => flagged.push(Hotspot {
                link,
                flagged_at: flagged_at.expect("runs imply latch"),
                windows,
                intervals: Vec::new(),
                peak_utilization,
                peak_depth,
            }),
        }
    }
    for h in &mut flagged {
        h.intervals = windows_to_intervals(&h.windows, window_ns);
    }
    flagged.sort_by(|a, b| (a.flagged_at, &a.link).cmp(&(b.flagged_at, &b.link)));

    FabricRollup {
        window_ns,
        links,
        nodes,
        fabric,
        hotspots: flagged,
    }
}

/// Merge sorted window indices into half-open `[begin, end)` simulated
/// time intervals (adjacent windows coalesce).
pub fn windows_to_intervals(windows: &[u64], window_ns: u64) -> Vec<(SimTime, SimTime)> {
    let mut out: Vec<(u64, u64)> = Vec::new();
    for &w in windows {
        match out.last_mut() {
            Some((_, e)) if *e == w => *e = w + 1,
            _ => out.push((w, w + 1)),
        }
    }
    out.into_iter()
        .map(|(s, e)| {
            (
                SimTime::from_nanos(s * window_ns),
                SimTime::from_nanos(e * window_ns),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::LinkWindow;

    fn busy(frac: f64, wns: u64) -> LinkWindow {
        LinkWindow {
            bytes: 100,
            frames: 1,
            busy_ns: (frac * wns as f64) as u64,
            ..LinkWindow::default()
        }
    }

    fn ring_with(windows: &[(u64, f64)]) -> MultiResRing {
        // Base 1 ms; detection level 1 is 10 ms, so paint whole 10 ms
        // buckets by writing their first base window with 10× busy.
        let mut r = MultiResRing::new(1_000_000);
        for &(w10, frac) in windows {
            r.push(w10 * 10, &busy(frac * 10.0, 1_000_000));
        }
        r
    }

    #[test]
    fn strip_direction_matches_causal_labels() {
        assert_eq!(strip_direction("trunk:n0-n1:fwd"), "trunk:n0-n1");
        assert_eq!(strip_direction("trunk:n0-n1:rev"), "trunk:n0-n1");
        assert_eq!(strip_direction("host:h3:up"), "host:h3");
        assert_eq!(strip_direction("seg:seg0"), "seg:seg0");
    }

    #[test]
    fn hotspot_needs_k_consecutive_windows() {
        let cfg = HotspotConfig {
            level: 1,
            util_threshold: 0.8,
            depth_threshold: 1000,
            k: 3,
        };
        // Two over windows, gap, two more: no streak of 3.
        let calm = ring_with(&[(0, 0.9), (1, 0.9), (3, 0.9), (4, 0.9)]);
        let r = rollup(&[("trunk:n0-n1:fwd".into(), calm)], None, &cfg);
        assert!(r.hotspots.is_empty());
        // Three consecutive over windows: latched.
        let hot = ring_with(&[(5, 0.9), (6, 0.95), (7, 0.9), (9, 0.9)]);
        let r = rollup(&[("trunk:n0-n1:fwd".into(), hot)], None, &cfg);
        assert_eq!(r.hotspots.len(), 1);
        let h = &r.hotspots[0];
        assert_eq!(h.link, "trunk:n0-n1");
        // Latched at the end of window 7 (the 3rd consecutive).
        assert_eq!(h.flagged_at, SimTime::from_millis(80));
        assert_eq!(h.windows, vec![5, 6, 7]);
        assert_eq!(
            h.intervals,
            vec![(SimTime::from_millis(50), SimTime::from_millis(80))]
        );
        assert!((h.peak_utilization - 0.95).abs() < 1e-9);
    }

    #[test]
    fn directions_merge_under_one_stripped_label() {
        let cfg = HotspotConfig {
            level: 1,
            util_threshold: 0.8,
            depth_threshold: 1000,
            k: 2,
        };
        let fwd = ring_with(&[(0, 0.9), (1, 0.9)]);
        let rev = ring_with(&[(4, 0.9), (5, 0.9)]);
        let r = rollup(
            &[
                ("trunk:n0-n1:fwd".into(), fwd),
                ("trunk:n0-n1:rev".into(), rev),
            ],
            None,
            &cfg,
        );
        assert_eq!(r.hotspots.len(), 1);
        assert_eq!(r.hotspots[0].windows, vec![0, 1, 4, 5]);
        assert_eq!(r.hotspots[0].intervals.len(), 2);
    }

    #[test]
    fn rollup_groups_by_topology_node() {
        use fxnet_sim::RATE_10M;
        // 4 hosts: h0, h1 on sw0; h2, h3 on sw1.
        let spec = TopologySpec::two_switches_trunk(4, RATE_10M);
        let cfg = HotspotConfig::default();
        let rings: Vec<(String, MultiResRing)> = vec![
            ("trunk:n0-n1:fwd".into(), ring_with(&[(0, 0.5)])),
            ("trunk:n0-n1:rev".into(), ring_with(&[(0, 0.1)])),
            ("host:h0:up".into(), ring_with(&[(0, 0.2)])),
            ("host:h2:up".into(), ring_with(&[(0, 0.2)])),
        ];
        let r = rollup(&rings, Some(&spec), &cfg);
        assert_eq!(r.nodes.len(), 2);
        // Both switches own the trunk; only the attached hosts' ports.
        let n0 = &r.nodes[0];
        assert!(n0.members.iter().any(|m| m == "trunk:n0-n1:fwd"));
        assert!(n0.members.iter().any(|m| m == "host:h0:up"));
        assert!(!n0.members.iter().any(|m| m == "host:h2:up"));
        let n1 = &r.nodes[1];
        assert!(n1.members.iter().any(|m| m == "host:h2:up"));
        assert!(n1.members.iter().any(|m| m == "trunk:n0-n1:rev"));
        assert_eq!(r.fabric.members.len(), 4);
        assert_eq!(r.fabric.total.frames, 4);
    }
}
