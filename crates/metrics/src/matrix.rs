//! Hypersparse per-window traffic matrices, Kepner style.
//!
//! Each sample window gets a src×dst traffic matrix stored
//! doubly-compressed: the host-pair id space is a single sorted vector
//! of the `(src, dst)` pairs that *ever* carried traffic (exactly the
//! sorted pair order `fxnet_trace::TraceStore`'s connection index
//! builds), and a window's matrix is the ascending list of pair ids
//! active in it with packet and byte counts. Hosts and pairs that are
//! silent in a window cost nothing — the common case at millisecond
//! resolution, where a 9-host LAN has 72 possible pairs and a window
//! typically touches one or two.
//!
//! Matrices are kept at the same resolution ladder as the link rings,
//! each coarse window the exact merge of its fine windows, and the
//! per-scale [`ScalingRelation`] summaries report how packets per
//! window, distinct pairs and the max-degree host grow with window
//! width — the scaling relations hypersparse traffic analysis plots.

use fxnet_sim::{FrameRecord, SimTime};
use fxnet_trace::TraceStore;
use std::collections::BTreeMap;

/// The sorted host-pair id space: pair id = index into the sorted,
/// deduplicated `(src, dst)` vector. Matches the pair ordering of
/// [`TraceStore::host_pairs`] so matrix rows and connection-index rows
/// agree on numbering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairSpace {
    pairs: Vec<(u32, u32)>,
}

impl PairSpace {
    /// Build from any pair list (sorted and deduplicated here).
    pub fn from_pairs(mut pairs: Vec<(u32, u32)>) -> PairSpace {
        pairs.sort_unstable();
        pairs.dedup();
        PairSpace { pairs }
    }

    /// The pair space of a stored trace, read straight off its
    /// connection index.
    pub fn from_store(store: &TraceStore) -> PairSpace {
        // host_pairs() iterates the connection index ascending, so the
        // vector arrives sorted and deduplicated already.
        PairSpace {
            pairs: store
                .host_pairs()
                .iter()
                .map(|&((s, d), _)| (s.0, d.0))
                .collect(),
        }
    }

    /// Number of pairs in the space.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The id of `(src, dst)`, if it carried traffic.
    pub fn id(&self, src: u32, dst: u32) -> Option<u32> {
        self.pairs.binary_search(&(src, dst)).ok().map(|i| i as u32)
    }

    /// The `(src, dst)` pair of id `id`.
    pub fn pair(&self, id: u32) -> (u32, u32) {
        self.pairs[id as usize]
    }

    /// Sorted iteration over the pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.pairs.iter().copied()
    }
}

/// One window's hypersparse matrix: ascending active pair ids with
/// packet/byte counts.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WindowMatrix {
    /// Active pair ids, ascending.
    pub pair_ids: Vec<u32>,
    /// Packets per active pair.
    pub packets: Vec<u64>,
    /// Wire bytes per active pair.
    pub bytes: Vec<u64>,
}

impl WindowMatrix {
    /// Number of active pairs (stored nonzeros).
    pub fn nnz(&self) -> usize {
        self.pair_ids.len()
    }

    /// Total packets in the window.
    pub fn total_packets(&self) -> u64 {
        self.packets.iter().sum()
    }

    /// Total wire bytes in the window.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Merge another window's matrix in (sorted-merge; counts add).
    pub fn fold(&mut self, o: &WindowMatrix) {
        let (mut ids, mut pk, mut by) = (Vec::new(), Vec::new(), Vec::new());
        let (mut i, mut j) = (0, 0);
        while i < self.pair_ids.len() || j < o.pair_ids.len() {
            let a = self.pair_ids.get(i).copied().unwrap_or(u32::MAX);
            let b = o.pair_ids.get(j).copied().unwrap_or(u32::MAX);
            match a.cmp(&b) {
                std::cmp::Ordering::Less => {
                    ids.push(a);
                    pk.push(self.packets[i]);
                    by.push(self.bytes[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    ids.push(b);
                    pk.push(o.packets[j]);
                    by.push(o.bytes[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    ids.push(a);
                    pk.push(self.packets[i] + o.packets[j]);
                    by.push(self.bytes[i] + o.bytes[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
        self.pair_ids = ids;
        self.packets = pk;
        self.bytes = by;
    }

    /// The host with the most distinct partners (in-degree plus
    /// out-degree over active pairs) in this window, with its degree;
    /// smallest host id wins ties. `None` when the window is empty.
    pub fn max_degree(&self, space: &PairSpace) -> Option<(u32, u32)> {
        let mut deg: BTreeMap<u32, u32> = BTreeMap::new();
        for &id in &self.pair_ids {
            let (s, d) = space.pair(id);
            *deg.entry(s).or_default() += 1;
            *deg.entry(d).or_default() += 1;
        }
        deg.into_iter()
            .max_by_key(|&(h, d)| (d, std::cmp::Reverse(h)))
    }
}

/// The matrices of one resolution: window index (at this scale) →
/// matrix, sparse and sorted.
#[derive(Debug, Clone, Default)]
pub struct ScaleMatrices {
    /// Width multiple of the base window.
    pub scale: u64,
    /// Touched windows only, ascending.
    pub windows: BTreeMap<u64, WindowMatrix>,
}

/// Per-scale summary: how traffic concentrates as the window widens —
/// the numbers a scaling-relation plot needs.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScalingRelation {
    /// Width multiple of the base window.
    pub scale: u64,
    /// Window width, ns.
    pub window_ns: u64,
    /// Nonempty windows at this scale.
    pub windows: u64,
    /// Total packets (identical at every scale — conservation).
    pub total_packets: u64,
    /// Largest packets-per-window.
    pub max_packets: u64,
    /// Mean packets over nonempty windows.
    pub mean_packets: f64,
    /// Largest distinct-pair count in one window.
    pub max_distinct_pairs: u64,
    /// Mean distinct pairs over nonempty windows.
    pub mean_distinct_pairs: f64,
    /// Largest host degree (distinct partners, in+out) in one window.
    pub max_degree: u32,
    /// The host that reached `max_degree` (smallest id on ties).
    pub max_degree_host: u32,
}

/// The complete multi-temporal matrix set of one run.
#[derive(Debug, Clone, Default)]
pub struct TrafficMatrices {
    /// Base window width, ns.
    pub bin_ns: u64,
    /// The global sorted host-pair id space.
    pub space: PairSpace,
    /// Matrices per resolution, finest first.
    pub scales: Vec<ScaleMatrices>,
}

impl TrafficMatrices {
    /// The per-scale scaling-relation summaries, finest first.
    pub fn summaries(&self) -> Vec<ScalingRelation> {
        self.scales
            .iter()
            .map(|sm| {
                let n = sm.windows.len() as u64;
                let total: u64 = sm.windows.values().map(WindowMatrix::total_packets).sum();
                let max_packets = sm
                    .windows
                    .values()
                    .map(WindowMatrix::total_packets)
                    .max()
                    .unwrap_or(0);
                let max_nnz = sm
                    .windows
                    .values()
                    .map(WindowMatrix::nnz)
                    .max()
                    .unwrap_or(0);
                let sum_nnz: usize = sm.windows.values().map(WindowMatrix::nnz).sum();
                let (max_degree_host, max_degree) = sm
                    .windows
                    .values()
                    .filter_map(|w| w.max_degree(&self.space))
                    .max_by_key(|&(h, d)| (d, std::cmp::Reverse(h)))
                    .unwrap_or((0, 0));
                ScalingRelation {
                    scale: sm.scale,
                    window_ns: self.bin_ns * sm.scale,
                    windows: n,
                    total_packets: total,
                    max_packets,
                    mean_packets: if n == 0 { 0.0 } else { total as f64 / n as f64 },
                    max_distinct_pairs: max_nnz as u64,
                    mean_distinct_pairs: if n == 0 {
                        0.0
                    } else {
                        sum_nnz as f64 / n as f64
                    },
                    max_degree,
                    max_degree_host,
                }
            })
            .collect()
    }

    /// The matrices of the finest scale.
    pub fn base(&self) -> &ScaleMatrices {
        &self.scales[0]
    }
}

/// Per-pair packet and byte counts of one accumulating window.
type PairCounts = BTreeMap<(u32, u32), (u64, u64)>;

/// Streaming accumulator fed one frame at a time (the frame-tap path);
/// [`MatrixAccum::finalize`] builds the pair space and the full ladder.
#[derive(Debug, Default)]
pub struct MatrixAccum {
    bin_ns: u64,
    windows: BTreeMap<u64, PairCounts>,
}

impl MatrixAccum {
    /// An empty accumulator over base windows of `bin_ns`.
    pub fn new(bin_ns: u64) -> MatrixAccum {
        MatrixAccum {
            bin_ns: bin_ns.max(1),
            windows: BTreeMap::new(),
        }
    }

    /// Count one delivered frame.
    pub fn record(&mut self, time: SimTime, src: u32, dst: u32, wire: u64) {
        let w = time.as_nanos() / self.bin_ns;
        let cell = self
            .windows
            .entry(w)
            .or_default()
            .entry((src, dst))
            .or_default();
        cell.0 += 1;
        cell.1 += wire;
    }

    /// Count a whole trace.
    pub fn record_trace(&mut self, trace: &[FrameRecord]) {
        for r in trace {
            self.record(r.time, r.src.0, r.dst.0, u64::from(r.wire_len));
        }
    }

    /// Total frames recorded so far.
    pub fn frames(&self) -> u64 {
        self.windows
            .values()
            .flat_map(|m| m.values())
            .map(|&(p, _)| p)
            .sum()
    }

    /// Build the pair space and the matrix ladder. `scales` must be
    /// strictly increasing starting at 1, like the ring ladder.
    pub fn finalize(self, scales: &[u64]) -> TrafficMatrices {
        let space = PairSpace::from_pairs(
            self.windows
                .values()
                .flat_map(|m| m.keys().copied())
                .collect(),
        );
        let mut out: Vec<ScaleMatrices> = scales
            .iter()
            .map(|&scale| ScaleMatrices {
                scale,
                windows: BTreeMap::new(),
            })
            .collect();
        for (w, cells) in &self.windows {
            // Cells arrive in sorted pair order from the BTreeMap, so
            // the per-window vectors are ascending by construction.
            let mut m = WindowMatrix::default();
            for (&(s, d), &(pk, by)) in cells {
                m.pair_ids.push(space.id(s, d).expect("pair in space"));
                m.packets.push(pk);
                m.bytes.push(by);
            }
            for sm in &mut out {
                sm.windows.entry(w / sm.scale).or_default().fold(&m);
            }
        }
        TrafficMatrices {
            bin_ns: self.bin_ns,
            space,
            scales: out,
        }
    }
}

/// Spill-free scaling-relation fold for the out-of-core scan.
///
/// [`MatrixAccum`] keeps every touched base window until `finalize` —
/// O(span) memory, which at ten million frames over minutes of
/// simulated time is the store all over again. This accumulator
/// produces the **same** [`ScalingRelation`] vector (bitwise — the
/// means divide the same integers) while holding only the *open*
/// window of each scale: frames must arrive in non-decreasing time
/// order (the capture invariant), so when a window's index moves on,
/// the window is folded into its scale's running summary and freed.
/// Counts are additive, so feeding every scale directly from frames
/// equals the coarse-from-fine merge `MatrixAccum::finalize` performs.
///
/// Peak memory is O(pairs active in the widest open window) — bounded
/// by the host-pair space, independent of trace length.
#[derive(Debug)]
pub struct ScalingAccum {
    bin_ns: u64,
    scales: Vec<ScaleAccum>,
    prev_ns: Option<u64>,
    frames: u64,
}

/// An open window: its index and per-pair packet counts.
type OpenWindow = (u64, BTreeMap<(u32, u32), u64>);

/// One scale's open window and running summary.
#[derive(Debug)]
struct ScaleAccum {
    scale: u64,
    open: Option<OpenWindow>,
    windows: u64,
    total_packets: u64,
    max_packets: u64,
    sum_nnz: u64,
    max_nnz: u64,
    /// Best (host, degree) so far, under the same `(degree,
    /// Reverse(host))` order `TrafficMatrices::summaries` maximizes.
    best: Option<(u32, u32)>,
}

impl ScaleAccum {
    fn close_open(&mut self) {
        let Some((_, counts)) = self.open.take() else {
            return;
        };
        let packets: u64 = counts.values().sum();
        let nnz = counts.len() as u64;
        self.windows += 1;
        self.total_packets += packets;
        self.max_packets = self.max_packets.max(packets);
        self.sum_nnz += nnz;
        self.max_nnz = self.max_nnz.max(nnz);
        let mut deg: BTreeMap<u32, u32> = BTreeMap::new();
        for &(s, d) in counts.keys() {
            *deg.entry(s).or_default() += 1;
            *deg.entry(d).or_default() += 1;
        }
        if let Some((h, d)) = deg
            .into_iter()
            .max_by_key(|&(h, d)| (d, std::cmp::Reverse(h)))
        {
            // Windows close in ascending order, so taking the later
            // window on ties replicates max_by_key's last-max-wins over
            // the window sequence.
            let better = match self.best {
                None => true,
                Some((bh, bd)) => (d, std::cmp::Reverse(h)) >= (bd, std::cmp::Reverse(bh)),
            };
            if better {
                self.best = Some((h, d));
            }
        }
    }
}

impl ScalingAccum {
    /// An empty accumulator over base windows of `bin_ns` at the given
    /// width-multiple ladder (strictly increasing, starting at 1).
    pub fn new(bin_ns: u64, scales: &[u64]) -> ScalingAccum {
        assert!(!scales.is_empty(), "at least one scale");
        assert!(
            scales.windows(2).all(|w| w[0] < w[1]),
            "scales must be strictly increasing"
        );
        ScalingAccum {
            bin_ns: bin_ns.max(1),
            scales: scales
                .iter()
                .map(|&scale| ScaleAccum {
                    scale,
                    open: None,
                    windows: 0,
                    total_packets: 0,
                    max_packets: 0,
                    sum_nnz: 0,
                    max_nnz: 0,
                    best: None,
                })
                .collect(),
            prev_ns: None,
            frames: 0,
        }
    }

    /// Count one delivered frame. Frames must arrive in non-decreasing
    /// time order — the spill-free window retirement depends on it.
    pub fn record(&mut self, time_ns: u64, src: u32, dst: u32) {
        if let Some(p) = self.prev_ns {
            assert!(
                time_ns >= p,
                "ScalingAccum requires time-ordered frames ({time_ns} after {p})"
            );
        }
        self.prev_ns = Some(time_ns);
        let w = time_ns / self.bin_ns;
        for sa in &mut self.scales {
            let ws = w / sa.scale;
            match &mut sa.open {
                Some((open_w, counts)) if *open_w == ws => {
                    *counts.entry((src, dst)).or_default() += 1;
                }
                _ => {
                    sa.close_open();
                    let mut counts = BTreeMap::new();
                    counts.insert((src, dst), 1u64);
                    sa.open = Some((ws, counts));
                }
            }
        }
        self.frames += 1;
    }

    /// Count one decoded chunk of columns.
    pub fn record_columns(&mut self, time_ns: &[u64], src: &[u32], dst: &[u32]) {
        assert!(time_ns.len() == src.len() && time_ns.len() == dst.len());
        for i in 0..time_ns.len() {
            self.record(time_ns[i], src[i], dst[i]);
        }
    }

    /// Total frames recorded so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Close the open windows and emit the per-scale summaries, finest
    /// first — equal to `MatrixAccum::finalize(scales).summaries()` on
    /// the same frames.
    pub fn finalize(mut self) -> Vec<ScalingRelation> {
        self.scales
            .iter_mut()
            .map(|sa| {
                sa.close_open();
                let (max_degree_host, max_degree) = sa.best.unwrap_or((0, 0));
                ScalingRelation {
                    scale: sa.scale,
                    window_ns: self.bin_ns * sa.scale,
                    windows: sa.windows,
                    total_packets: sa.total_packets,
                    max_packets: sa.max_packets,
                    mean_packets: if sa.windows == 0 {
                        0.0
                    } else {
                        sa.total_packets as f64 / sa.windows as f64
                    },
                    max_distinct_pairs: sa.max_nnz,
                    mean_distinct_pairs: if sa.windows == 0 {
                        0.0
                    } else {
                        sa.sum_nnz as f64 / sa.windows as f64
                    },
                    max_degree,
                    max_degree_host,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::{FrameKind, HostId, Proto};
    use proptest::prelude::*;

    fn rec(ms: u64, src: u32, dst: u32, len: u32) -> FrameRecord {
        FrameRecord {
            time: SimTime::from_millis(ms),
            wire_len: len,
            proto: Proto::Tcp,
            kind: FrameKind::Data,
            src: HostId(src),
            dst: HostId(dst),
        }
    }

    #[test]
    fn pair_space_matches_trace_store_index() {
        let trace = vec![
            rec(0, 3, 1, 100),
            rec(1, 0, 2, 200),
            rec(2, 3, 1, 100),
            rec(3, 2, 0, 60),
        ];
        let mut acc = MatrixAccum::new(1_000_000);
        acc.record_trace(&trace);
        let m = acc.finalize(&[1]);
        let store = TraceStore::from_records(&trace);
        assert_eq!(m.space, PairSpace::from_store(&store));
        assert_eq!(m.space.len(), 3);
        assert_eq!(m.space.id(0, 2), Some(0));
        assert_eq!(m.space.pair(2), (3, 1));
    }

    #[test]
    fn window_matrices_are_hypersparse_and_fold_exactly() {
        let mut acc = MatrixAccum::new(1_000_000);
        // Windows 0 and 1 (1 ms), then a lone frame at 15 ms.
        acc.record_trace(&[
            rec(0, 0, 1, 100),
            rec(0, 1, 0, 60),
            rec(1, 0, 1, 100),
            rec(15, 2, 3, 500),
        ]);
        let m = acc.finalize(&[1, 10]);
        assert_eq!(m.base().windows.len(), 3);
        assert_eq!(m.scales[1].windows.len(), 2);
        // The 10 ms bucket 0 merges base windows 0 and 1.
        let coarse = &m.scales[1].windows[&0];
        assert_eq!(coarse.nnz(), 2);
        assert_eq!(coarse.total_packets(), 3);
        assert_eq!(coarse.total_bytes(), 260);
        // Degree: host 0 and 1 both have 2 partnerships; smallest wins.
        assert_eq!(coarse.max_degree(&m.space), Some((0, 2)));
    }

    #[test]
    fn scaling_relations_conserve_and_widen() {
        let mut acc = MatrixAccum::new(1_000_000);
        for ms in 0..50 {
            acc.record_trace(&[rec(ms, ms as u32 % 4, (ms as u32 + 1) % 4, 100)]);
        }
        let m = acc.finalize(&[1, 10]);
        let s = m.summaries();
        assert_eq!(s[0].total_packets, 50);
        assert_eq!(s[1].total_packets, 50, "packets conserved across scales");
        assert!(s[1].mean_packets > s[0].mean_packets);
        assert!(s[1].mean_distinct_pairs >= s[0].mean_distinct_pairs);
        assert_eq!(s[0].window_ns, 1_000_000);
        assert_eq!(s[1].window_ns, 10_000_000);
    }

    #[test]
    fn scaling_accum_matches_materialized_summaries() {
        let scales = [1u64, 10, 100, 1000];
        let mut acc = MatrixAccum::new(1_000_000);
        let mut stream = ScalingAccum::new(1_000_000, &scales);
        for ms in 0..500u64 {
            let (s, d) = ((ms % 5) as u32, ((ms % 5 + 1 + ms % 3) % 5) as u32);
            let t = SimTime::from_millis(ms) + SimTime::from_micros(ms % 900);
            acc.record(t, s, d, 100 + ms);
            stream.record(t.as_nanos(), s, d);
        }
        assert_eq!(stream.frames(), 500);
        let want = acc.finalize(&scales).summaries();
        let got = stream.finalize();
        assert_eq!(got, want);
        // Means must match to the bit, not approximately.
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.mean_packets.to_bits(), b.mean_packets.to_bits());
            assert_eq!(
                a.mean_distinct_pairs.to_bits(),
                b.mean_distinct_pairs.to_bits()
            );
        }
    }

    #[test]
    fn scaling_accum_column_feed_matches_per_frame_feed() {
        let times: Vec<u64> = (0..300u64).map(|i| i * 777_000).collect();
        let src: Vec<u32> = (0..300u32).map(|i| i % 4).collect();
        let dst: Vec<u32> = (0..300u32).map(|i| (i + 1 + i % 2) % 4).collect();
        let mut whole = ScalingAccum::new(1_000_000, &[1, 10]);
        whole.record_columns(&times, &src, &dst);
        let mut chunked = ScalingAccum::new(1_000_000, &[1, 10]);
        for at in (0..300).step_by(37) {
            let end = (at + 37).min(300);
            chunked.record_columns(&times[at..end], &src[at..end], &dst[at..end]);
        }
        assert_eq!(whole.finalize(), chunked.finalize());
    }

    #[test]
    fn empty_scaling_accum_matches_empty_materialized() {
        let want = MatrixAccum::new(1_000_000).finalize(&[1, 10]).summaries();
        assert_eq!(ScalingAccum::new(1_000_000, &[1, 10]).finalize(), want);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn scaling_accum_rejects_time_travel() {
        let mut s = ScalingAccum::new(1_000_000, &[1]);
        s.record(5_000_000, 0, 1);
        s.record(4_999_999, 0, 1);
    }

    proptest! {
        /// The streaming scaling fold equals the materialized ladder's
        /// summaries on arbitrary time-ordered traffic.
        #[test]
        fn scaling_accum_equals_materialized_on_arbitrary_traffic(
            frames in prop::collection::vec((0u64..2_000_000, 0u32..6, 0u32..6), 0..150),
        ) {
            let mut times: Vec<u64> = frames.iter().map(|&(us, _, _)| us * 1000).collect();
            times.sort_unstable();
            let scales = [1u64, 10, 100];
            let mut acc = MatrixAccum::new(1_000_000);
            let mut stream = ScalingAccum::new(1_000_000, &scales);
            for (&t, &(_, s, d)) in times.iter().zip(&frames) {
                acc.record(SimTime::from_nanos(t), s, d, 60);
                stream.record(t, s, d);
            }
            prop_assert_eq!(stream.finalize(), acc.finalize(&scales).summaries());
        }

        /// Conservation across the ladder on arbitrary traffic: every
        /// scale carries exactly the recorded packets and bytes, and
        /// every coarse window is the merge of its fine windows.
        #[test]
        fn ladder_conserves_arbitrary_traffic(
            frames in prop::collection::vec((0u64..200, 0u32..6, 0u32..6, 60u32..1500), 1..120),
        ) {
            let mut acc = MatrixAccum::new(1_000_000);
            let mut packets = 0u64;
            let mut bytes = 0u64;
            for &(ms, s, d, len) in &frames {
                if s == d { continue; }
                acc.record(SimTime::from_millis(ms), s, d, u64::from(len));
                packets += 1;
                bytes += u64::from(len);
            }
            let m = acc.finalize(&[1, 10, 100]);
            for sm in &m.scales {
                let p: u64 = sm.windows.values().map(WindowMatrix::total_packets).sum();
                let b: u64 = sm.windows.values().map(WindowMatrix::total_bytes).sum();
                prop_assert_eq!(p, packets);
                prop_assert_eq!(b, bytes);
            }
            // Coarse = exact merge of fine.
            for lvl in 1..m.scales.len() {
                let ratio = m.scales[lvl].scale / m.scales[lvl - 1].scale;
                for (&cw, coarse) in &m.scales[lvl].windows {
                    let mut fold = WindowMatrix::default();
                    for (_, fine) in m.scales[lvl - 1].windows.range(cw * ratio..(cw + 1) * ratio) {
                        fold.fold(fine);
                    }
                    prop_assert_eq!(&fold, coarse);
                }
            }
        }
    }
}
