//! Deterministic exports of a [`WeatherReport`]: structured JSON,
//! line-per-observation JSONL, the Prometheus snapshot (through
//! `fxnet-telemetry`), and Perfetto counter tracks that sit alongside
//! the causal critical-path slices in one Chrome trace file.
//!
//! Every export walks the report in its stored order (links in sampler
//! order, windows ascending, scales finest-first), builds
//! insertion-ordered JSON objects, and performs no floating-point
//! reassociation — so byte-identical reports yield byte-identical
//! artifacts regardless of thread count or host.

use crate::matrix::ScalingRelation;
use crate::rollup::{FabricRollup, GroupHealth, Hotspot, LinkHealth};
use crate::sampler::WeatherReport;
use fxnet_sim::LinkWindow;
use fxnet_telemetry::{labeled, TelemetryRegistry};
use serde::Value;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn window_value(w: u64, win: &LinkWindow, window_ns: u64) -> Value {
    obj(vec![
        ("w", Value::U64(w)),
        ("bytes", Value::U64(win.bytes)),
        ("frames", Value::U64(win.frames)),
        ("busy_ns", Value::U64(win.busy_ns)),
        ("wait_ns", Value::U64(win.wait_ns)),
        ("backoff_ns", Value::U64(win.backoff_ns)),
        ("collisions", Value::U64(win.collisions)),
        ("retx_bytes", Value::U64(win.retx_bytes)),
        ("depth_max", Value::U64(u64::from(win.depth_max))),
        ("util", Value::F64(win.utilization(window_ns))),
    ])
}

fn total_value(win: &LinkWindow) -> Value {
    obj(vec![
        ("bytes", Value::U64(win.bytes)),
        ("frames", Value::U64(win.frames)),
        ("busy_ns", Value::U64(win.busy_ns)),
        ("wait_ns", Value::U64(win.wait_ns)),
        ("backoff_ns", Value::U64(win.backoff_ns)),
        ("collisions", Value::U64(win.collisions)),
        ("retx_bytes", Value::U64(win.retx_bytes)),
        ("depth_max", Value::U64(u64::from(win.depth_max))),
    ])
}

fn link_health_value(lh: &LinkHealth) -> Value {
    obj(vec![
        ("label", Value::Str(lh.label.clone())),
        ("window_ns", Value::U64(lh.window_ns)),
        ("windows", Value::U64(lh.windows)),
        ("total", total_value(&lh.total)),
        ("peak_utilization", Value::F64(lh.peak_utilization)),
        ("mean_utilization", Value::F64(lh.mean_utilization)),
        ("peak_depth", Value::U64(u64::from(lh.peak_depth))),
    ])
}

fn group_value(g: &GroupHealth) -> Value {
    obj(vec![
        ("name", Value::Str(g.name.clone())),
        (
            "members",
            Value::Array(g.members.iter().map(|m| Value::Str(m.clone())).collect()),
        ),
        ("total", total_value(&g.total)),
        ("peak_utilization", Value::F64(g.peak_utilization)),
        ("peak_depth", Value::U64(u64::from(g.peak_depth))),
    ])
}

fn hotspot_value(h: &Hotspot) -> Value {
    obj(vec![
        ("link", Value::Str(h.link.clone())),
        ("flagged_at_ns", Value::U64(h.flagged_at.as_nanos())),
        (
            "windows",
            Value::Array(h.windows.iter().map(|&w| Value::U64(w)).collect()),
        ),
        (
            "intervals_ns",
            Value::Array(
                h.intervals
                    .iter()
                    .map(|&(b, e)| {
                        Value::Array(vec![Value::U64(b.as_nanos()), Value::U64(e.as_nanos())])
                    })
                    .collect(),
            ),
        ),
        ("peak_utilization", Value::F64(h.peak_utilization)),
        ("peak_depth", Value::U64(u64::from(h.peak_depth))),
    ])
}

fn scaling_value(s: &ScalingRelation) -> Value {
    obj(vec![
        ("scale", Value::U64(s.scale)),
        ("window_ns", Value::U64(s.window_ns)),
        ("windows", Value::U64(s.windows)),
        ("total_packets", Value::U64(s.total_packets)),
        ("max_packets", Value::U64(s.max_packets)),
        ("mean_packets", Value::F64(s.mean_packets)),
        ("max_distinct_pairs", Value::U64(s.max_distinct_pairs)),
        ("mean_distinct_pairs", Value::F64(s.mean_distinct_pairs)),
        ("max_degree", Value::U64(u64::from(s.max_degree))),
        ("max_degree_host", Value::U64(u64::from(s.max_degree_host))),
    ])
}

fn rollup_value(r: &FabricRollup) -> Value {
    obj(vec![
        ("window_ns", Value::U64(r.window_ns)),
        (
            "links",
            Value::Array(r.links.iter().map(link_health_value).collect()),
        ),
        (
            "nodes",
            Value::Array(r.nodes.iter().map(group_value).collect()),
        ),
        ("fabric", group_value(&r.fabric)),
        (
            "hotspots",
            Value::Array(r.hotspots.iter().map(hotspot_value).collect()),
        ),
    ])
}

/// The full weather report as one deterministic JSON value: ring
/// ladders per link, the hypersparse matrices, scaling relations and
/// the rollup.
pub fn report_value(r: &WeatherReport) -> Value {
    let links = r
        .rings
        .iter()
        .map(|(label, ring)| {
            let levels = (0..ring.depth())
                .map(|lvl| {
                    let wns = ring.level_bin_ns(lvl);
                    obj(vec![
                        ("scale", Value::U64(ring.scales()[lvl])),
                        ("window_ns", Value::U64(wns)),
                        (
                            "windows",
                            Value::Array(
                                ring.windows(lvl)
                                    .map(|(w, win)| window_value(w, win, wns))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect();
            obj(vec![
                ("label", Value::Str(label.clone())),
                ("levels", Value::Array(levels)),
                ("total", total_value(&ring.total())),
            ])
        })
        .collect();

    let pairs = Value::Array(
        r.matrices
            .space
            .iter()
            .map(|(s, d)| Value::Array(vec![Value::U64(u64::from(s)), Value::U64(u64::from(d))]))
            .collect(),
    );
    let scales = Value::Array(
        r.matrices
            .scales
            .iter()
            .map(|sm| {
                obj(vec![
                    ("scale", Value::U64(sm.scale)),
                    (
                        "windows",
                        Value::Array(
                            sm.windows
                                .iter()
                                .map(|(&w, m)| {
                                    obj(vec![
                                        ("w", Value::U64(w)),
                                        (
                                            "pairs",
                                            Value::Array(
                                                m.pair_ids
                                                    .iter()
                                                    .map(|&p| Value::U64(u64::from(p)))
                                                    .collect(),
                                            ),
                                        ),
                                        (
                                            "packets",
                                            Value::Array(
                                                m.packets.iter().map(|&p| Value::U64(p)).collect(),
                                            ),
                                        ),
                                        (
                                            "bytes",
                                            Value::Array(
                                                m.bytes.iter().map(|&b| Value::U64(b)).collect(),
                                            ),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );

    obj(vec![
        ("bin_ns", Value::U64(r.bin_ns)),
        (
            "scales",
            Value::Array(r.scales.iter().map(|&s| Value::U64(s)).collect()),
        ),
        ("links", Value::Array(links)),
        (
            "traffic",
            obj(vec![
                ("pairs", pairs),
                ("scales", scales),
                (
                    "scaling",
                    Value::Array(r.scaling.iter().map(scaling_value).collect()),
                ),
            ]),
        ),
        ("rollup", rollup_value(&r.rollup)),
    ])
}

/// The weather stream: one JSON object per line. A `meta` header, one
/// `w` line per touched detection-level window per link, one `scaling`
/// line per ladder level, one `hotspot` line per latched hotspot.
pub fn report_jsonl(r: &WeatherReport) -> String {
    let mut out = String::new();
    let mut push = |v: Value| {
        out.push_str(&serde::json::to_string(&v));
        out.push('\n');
    };
    push(obj(vec![
        ("t", Value::Str("meta".into())),
        ("bin_ns", Value::U64(r.bin_ns)),
        (
            "scales",
            Value::Array(r.scales.iter().map(|&s| Value::U64(s)).collect()),
        ),
        ("links", Value::U64(r.rings.len() as u64)),
        ("pairs", Value::U64(r.matrices.space.len() as u64)),
    ]));
    for (label, ring) in &r.rings {
        let lvl = crate::rollup::HotspotConfig::default()
            .level
            .min(ring.depth() - 1);
        let wns = ring.level_bin_ns(lvl);
        for (w, win) in ring.windows(lvl) {
            let mut v = vec![
                ("t", Value::Str("w".into())),
                ("link", Value::Str(label.clone())),
            ];
            let Value::Object(rest) = window_value(w, win, wns) else {
                unreachable!("window_value builds an object");
            };
            let mut entries: Vec<(String, Value)> =
                v.drain(..).map(|(k, val)| (k.to_string(), val)).collect();
            entries.extend(rest);
            push(Value::Object(entries));
        }
    }
    for s in &r.scaling {
        let Value::Object(rest) = scaling_value(s) else {
            unreachable!("scaling_value builds an object");
        };
        let mut entries = vec![("t".to_string(), Value::Str("scaling".into()))];
        entries.extend(rest);
        push(Value::Object(entries));
    }
    for h in &r.rollup.hotspots {
        let Value::Object(rest) = hotspot_value(h) else {
            unreachable!("hotspot_value builds an object");
        };
        let mut entries = vec![("t".to_string(), Value::Str("hotspot".into()))];
        entries.extend(rest);
        push(Value::Object(entries));
    }
    out
}

/// Snapshot the report into the unified registry under labeled
/// `fabric_*` families, Prometheus-ready: totals as counters, peaks
/// and scaling relations as gauges, one `fabric_hotspot_flagged` gauge
/// per latched hotspot.
pub fn fill_registry(r: &WeatherReport, reg: &mut TelemetryRegistry) {
    fill_registry_labeled(r, reg, &[]);
}

/// [`fill_registry`] with `extra` label pairs appended to every sample
/// — e.g. `[("prog", "SOR")]` so several programs' reports coexist in
/// one registry without colliding.
pub fn fill_registry_labeled(
    r: &WeatherReport,
    reg: &mut TelemetryRegistry,
    extra: &[(&str, &str)],
) {
    let with = |own: &[(&str, &str)]| -> Vec<(String, String)> {
        own.iter()
            .chain(extra)
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect()
    };
    let name = |base: &str, labels: &Vec<(String, String)>| -> String {
        if labels.is_empty() {
            base.to_string()
        } else {
            let refs: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            labeled(base, &refs)
        }
    };
    for lh in &r.rollup.links {
        let l = with(&[("link", lh.label.as_str())]);
        reg.set_counter(name("fabric_link_bytes_total", &l), lh.total.bytes);
        reg.set_counter(name("fabric_link_frames_total", &l), lh.total.frames);
        reg.set_counter(
            name("fabric_link_collisions_total", &l),
            lh.total.collisions,
        );
        reg.set_counter(
            name("fabric_link_retx_bytes_total", &l),
            lh.total.retx_bytes,
        );
        reg.set_gauge(
            name("fabric_link_utilization_peak", &l),
            lh.peak_utilization,
        );
        reg.set_gauge(
            name("fabric_link_utilization_mean", &l),
            lh.mean_utilization,
        );
        reg.set_gauge(
            name("fabric_link_queue_depth_peak", &l),
            f64::from(lh.peak_depth),
        );
    }
    for g in r
        .rollup
        .nodes
        .iter()
        .chain(std::iter::once(&r.rollup.fabric))
    {
        let l = with(&[("node", g.name.as_str())]);
        reg.set_counter(name("fabric_node_bytes_total", &l), g.total.bytes);
        reg.set_gauge(name("fabric_node_utilization_peak", &l), g.peak_utilization);
    }
    for h in &r.rollup.hotspots {
        let l = with(&[("link", h.link.as_str())]);
        reg.set_gauge(name("fabric_hotspot_flagged", &l), 1.0);
        reg.set_gauge(
            name("fabric_hotspot_flagged_at_seconds", &l),
            h.flagged_at.as_nanos() as f64 / 1e9,
        );
        reg.set_counter(
            name("fabric_hotspot_windows_total", &l),
            h.windows.len() as u64,
        );
    }
    for s in &r.scaling {
        let scale = s.scale.to_string();
        let l = with(&[("scale", scale.as_str())]);
        reg.set_counter(name("fabric_matrix_packets_total", &l), s.total_packets);
        reg.set_gauge(
            name("fabric_matrix_pairs_max", &l),
            s.max_distinct_pairs as f64,
        );
        reg.set_gauge(name("fabric_matrix_pairs_mean", &l), s.mean_distinct_pairs);
        reg.set_gauge(
            name("fabric_matrix_degree_max", &l),
            f64::from(s.max_degree),
        );
    }
    reg.set_counter(
        name("fabric_pairs_distinct", &with(&[])),
        r.matrices.space.len() as u64,
    );
}

/// Perfetto counter tracks (`ph:"C"`): per link direction, a
/// utilization track and a queue-depth track sampled at the detection
/// resolution, each closed with a zero sample one window after the last
/// touched window. Concatenate with the causal `chrome_trace` slice
/// array to see hotspot windows under the straggler spans they explain.
pub fn counter_events(r: &WeatherReport) -> Vec<Value> {
    let mut out = Vec::new();
    let micros = |ns: u64| Value::F64(ns as f64 / 1000.0);
    for (label, ring) in &r.rings {
        let lvl = crate::rollup::HotspotConfig::default()
            .level
            .min(ring.depth() - 1);
        let wns = ring.level_bin_ns(lvl);
        let mut sample = |name: String, ts_ns: u64, key: &str, v: Value| {
            out.push(obj(vec![
                ("name", Value::Str(name)),
                ("ph", Value::Str("C".into())),
                ("ts", micros(ts_ns)),
                ("pid", Value::U64(0)),
                ("args", obj(vec![(key, v)])),
            ]));
        };
        let mut last = None;
        for (w, win) in ring.windows(lvl) {
            sample(
                format!("util {label}"),
                w * wns,
                "utilization",
                Value::F64(win.utilization(wns)),
            );
            sample(
                format!("depth {label}"),
                w * wns,
                "frames",
                Value::U64(u64::from(win.depth_max)),
            );
            last = Some(w);
        }
        if let Some(w) = last {
            sample(
                format!("util {label}"),
                (w + 1) * wns,
                "utilization",
                Value::F64(0.0),
            );
            sample(
                format!("depth {label}"),
                (w + 1) * wns,
                "frames",
                Value::U64(0),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::FabricSampler;
    use fxnet_sim::{LinkSeries, LinkStats};
    use fxnet_telemetry::{parse_prometheus, prometheus_text};

    fn report() -> WeatherReport {
        let mut sampler = FabricSampler::new();
        let mut tap = sampler.tap();
        for i in 0..20u64 {
            tap(&fxnet_sim::FrameRecord {
                time: fxnet_sim::SimTime::from_millis(i),
                wire_len: 1000,
                proto: fxnet_sim::Proto::Tcp,
                kind: fxnet_sim::FrameKind::Data,
                src: fxnet_sim::HostId((i % 3) as u32),
                dst: fxnet_sim::HostId(((i + 1) % 3) as u32),
            });
        }
        drop(tap);
        // 60 ms of 90% utilization: six 10 ms detection windows, enough
        // for the default k = 4 streak to latch a hotspot.
        let mut series = LinkSeries::new();
        for w in 0..60u64 {
            let win = series.window_mut(w);
            win.bytes = 1000;
            win.frames = 1;
            win.busy_ns = 900_000;
            win.depth_max = 3;
        }
        sampler.ingest_links(&LinkStats {
            bin_ns: 1_000_000,
            links: vec![("trunk:n0-n1:fwd".to_string(), series)],
        });
        sampler.finalize(None)
    }

    #[test]
    fn json_and_jsonl_are_deterministic() {
        let a = serde::json::to_string(&report_value(&report()));
        let b = serde::json::to_string(&report_value(&report()));
        assert_eq!(a, b);
        assert_eq!(report_jsonl(&report()), report_jsonl(&report()));
        let jsonl = report_jsonl(&report());
        assert!(jsonl.lines().next().unwrap().contains("\"meta\""));
        assert!(jsonl.lines().all(|l| serde::json::parse(l).is_ok()));
        assert!(jsonl.contains("\"hotspot\""), "90% for 60 ms must flag");
    }

    #[test]
    fn registry_snapshot_round_trips_through_prometheus_text() {
        let r = report();
        let mut reg = TelemetryRegistry::new();
        fill_registry(&r, &mut reg);
        let text = prometheus_text(&reg);
        assert!(text.contains("fabric_link_bytes_total{link=\"trunk:n0-n1:fwd\"} 60000"));
        assert!(text.contains("fabric_hotspot_flagged{link=\"trunk:n0-n1\"} 1"));
        let parsed = parse_prometheus(&text).unwrap();
        let n = reg.counters().count() + reg.gauges().count();
        assert_eq!(parsed.len(), n);
        // Every registry value survives the text round trip exactly.
        for (name, v) in reg.counters() {
            let got = parsed.iter().find(|(k, _)| k == name).unwrap().1;
            assert_eq!(got, v as f64, "{name}");
        }
    }

    #[test]
    fn counter_events_form_closed_tracks() {
        let evs = counter_events(&report());
        // Six 10 ms windows × 2 tracks + 2 closing zeros.
        assert_eq!(evs.len(), 14);
        for e in &evs {
            assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("C"));
            assert!(e.get("ts").is_some());
        }
        let last_util = evs
            .iter()
            .rfind(|e| e.get("name").and_then(|v| v.as_str()) == Some("util trunk:n0-n1:fwd"))
            .unwrap();
        assert_eq!(
            last_util
                .get("args")
                .and_then(|a| a.get("utilization"))
                .and_then(|v| v.as_f64()),
            Some(0.0)
        );
    }
}
