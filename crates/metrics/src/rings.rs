//! Hierarchical multi-resolution sample rings.
//!
//! A [`MultiResRing`] holds one link direction's sample windows at a
//! ladder of resolutions — by default 1 ms, 10 ms, 100 ms and 1 s — with
//! the *exact* consistency invariant that every coarse bucket is
//! precisely the [`LinkWindow::fold`] of the fine buckets it covers
//! (counters add, the high-water queue depth takes the max). Pushing a
//! base window updates every level in one pass, so the invariant holds
//! at all times, not just at flush points; [`MultiResRing::check_consistency`]
//! verifies it and the property tests below drive it with arbitrary
//! sparse inputs.
//!
//! Levels may be bounded ([`MultiResRing::with_capacity`]): when a level
//! overflows, its *oldest* buckets are evicted into a per-level fold, so
//! fine detail ages out while coarse history — and the exact run total —
//! survive. The weather-map sampler uses unbounded rings (exactness
//! first; sparse maps make idle time free), the bounded form exists for
//! long-lived live monitors.

use fxnet_sim::{LinkSeries, LinkWindow};
use std::collections::BTreeMap;

/// The default resolution ladder, as multiples of the base window:
/// 1 ms → 10 ms → 100 ms → 1 s at the default 1 ms base.
pub const DEFAULT_SCALES: [u64; 4] = [1, 10, 100, 1000];

/// One resolution level: sparse buckets at `scale × base` width, plus
/// the exact fold of everything evicted from this level.
#[derive(Debug, Clone)]
struct RingLevel {
    scale: u64,
    bins: BTreeMap<u64, LinkWindow>,
    evicted: LinkWindow,
    evicted_buckets: u64,
    /// Highest bucket index ever evicted — buckets at or below it are
    /// incomplete, so consistency checks skip coarse buckets that
    /// overlap them.
    evicted_through: Option<u64>,
}

impl RingLevel {
    fn new(scale: u64) -> RingLevel {
        RingLevel {
            scale,
            bins: BTreeMap::new(),
            evicted: LinkWindow::default(),
            evicted_buckets: 0,
            evicted_through: None,
        }
    }
}

/// A ring of rings: one link direction's windows at every resolution of
/// the ladder, coarse buckets always the exact fold of their fine ones.
#[derive(Debug, Clone)]
pub struct MultiResRing {
    base_bin_ns: u64,
    capacity: usize,
    levels: Vec<RingLevel>,
}

impl MultiResRing {
    /// An unbounded ring with the [`DEFAULT_SCALES`] ladder over base
    /// windows of `base_bin_ns`.
    pub fn new(base_bin_ns: u64) -> MultiResRing {
        MultiResRing::with_scales(base_bin_ns, &DEFAULT_SCALES)
    }

    /// An unbounded ring with a custom ladder. Scales must be strictly
    /// increasing and start at 1 (the base resolution).
    pub fn with_scales(base_bin_ns: u64, scales: &[u64]) -> MultiResRing {
        assert!(scales.first() == Some(&1), "ladder must start at the base");
        assert!(
            scales.windows(2).all(|w| w[0] < w[1]),
            "ladder must be strictly increasing"
        );
        MultiResRing {
            base_bin_ns: base_bin_ns.max(1),
            capacity: usize::MAX,
            levels: scales.iter().map(|&s| RingLevel::new(s)).collect(),
        }
    }

    /// Bound every level to at most `capacity` retained buckets; older
    /// buckets are evicted into the level's exact-fold remainder.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> MultiResRing {
        self.capacity = capacity.max(1);
        self
    }

    /// The base window width, ns.
    pub fn base_bin_ns(&self) -> u64 {
        self.base_bin_ns
    }

    /// The resolution ladder (multiples of the base window).
    pub fn scales(&self) -> Vec<u64> {
        self.levels.iter().map(|l| l.scale).collect()
    }

    /// Number of levels in the ladder.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Window width of level `level`, ns.
    pub fn level_bin_ns(&self, level: usize) -> u64 {
        self.base_bin_ns * self.levels[level].scale
    }

    /// Fold one base window (index `w` in base-window units) into every
    /// level. Push order does not matter: buckets fold commutatively.
    pub fn push(&mut self, w: u64, win: &LinkWindow) {
        for lvl in &mut self.levels {
            lvl.bins.entry(w / lvl.scale).or_default().fold(win);
            while lvl.bins.len() > self.capacity {
                let (old_w, old) = lvl.bins.pop_first().expect("nonempty over capacity");
                lvl.evicted.fold(&old);
                lvl.evicted_buckets += 1;
                lvl.evicted_through = Some(lvl.evicted_through.map_or(old_w, |e| e.max(old_w)));
            }
        }
    }

    /// Fold a whole sampled series in.
    pub fn ingest(&mut self, series: &LinkSeries) {
        for (w, win) in series.windows() {
            self.push(w, win);
        }
    }

    /// Sorted iteration over the retained buckets of level `level`.
    pub fn windows(&self, level: usize) -> impl Iterator<Item = (u64, &LinkWindow)> {
        self.levels[level].bins.iter().map(|(&w, s)| (w, s))
    }

    /// Retained bucket at `(level, w)`, if touched.
    pub fn bucket(&self, level: usize, w: u64) -> Option<&LinkWindow> {
        self.levels[level].bins.get(&w)
    }

    /// Retained bucket count of level `level`.
    pub fn level_len(&self, level: usize) -> usize {
        self.levels[level].bins.len()
    }

    /// Buckets evicted from level `level` so far.
    pub fn evicted_buckets(&self, level: usize) -> u64 {
        self.levels[level].evicted_buckets
    }

    /// Exact fold of *everything* ever pushed — retained plus evicted —
    /// identical at every level by construction.
    pub fn total(&self) -> LinkWindow {
        let lvl = &self.levels[0];
        let mut t = lvl.evicted;
        for s in lvl.bins.values() {
            t.fold(s);
        }
        t
    }

    /// Verify the multi-resolution invariant: every coarse bucket whose
    /// covering fine buckets are all still retained equals their exact
    /// fold, and every level's retained+evicted total matches the base
    /// level's. Returns the first violation as an error string.
    pub fn check_consistency(&self) -> Result<(), String> {
        let base_total = self.total();
        for (i, lvl) in self.levels.iter().enumerate() {
            let mut t = lvl.evicted;
            for s in lvl.bins.values() {
                t.fold(s);
            }
            if t != base_total {
                return Err(format!(
                    "level {i} (scale {}) total diverges from base",
                    lvl.scale
                ));
            }
            if i == 0 {
                continue;
            }
            let fine = &self.levels[i - 1];
            let ratio = lvl.scale / fine.scale;
            for (&cw, coarse) in &lvl.bins {
                // Skip coarse buckets whose fine range lost detail to
                // eviction at either level — they are intentionally
                // incomplete at the finer resolution.
                let lo = cw * ratio;
                let hi = lo + ratio;
                let fine_evicted = fine.evicted_through.is_some_and(|e| e >= lo);
                let self_evicted = lvl.evicted_through.is_some_and(|e| e >= cw);
                if fine_evicted || self_evicted {
                    continue;
                }
                let mut fold = LinkWindow::default();
                for (_, fw) in fine.bins.range(lo..hi) {
                    fold.fold(fw);
                }
                if fold != *coarse {
                    return Err(format!(
                        "level {i} bucket {cw} is not the fold of level {} [{lo},{hi})",
                        i - 1
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn win(bytes: u64, depth: u32) -> LinkWindow {
        LinkWindow {
            bytes,
            frames: 1,
            busy_ns: bytes * 8,
            wait_ns: bytes / 2,
            backoff_ns: bytes / 4,
            collisions: u64::from(depth % 2),
            retx_bytes: bytes / 8,
            depth_max: depth,
        }
    }

    #[test]
    fn coarse_buckets_are_exact_folds() {
        let mut r = MultiResRing::new(1_000_000);
        for w in [0, 3, 9, 10, 57, 999, 1000, 1001] {
            r.push(w, &win(100 + w, (w % 7) as u32));
        }
        r.check_consistency().unwrap();
        // Base windows 0, 3, 9 land in 10 ms bucket 0.
        let b = r.bucket(1, 0).unwrap();
        assert_eq!(b.bytes, 100 + 103 + 109);
        assert_eq!(b.depth_max, 3); // max of depths 0, 3, 2
                                    // All eight base windows land in 1 s buckets 0 and 1.
        assert_eq!(r.level_len(3), 2);
        assert_eq!(r.total().frames, 8);
    }

    #[test]
    fn bounded_ring_evicts_fine_but_conserves_totals() {
        let mut r = MultiResRing::new(1_000_000).with_capacity(4);
        for w in 0..40u64 {
            r.push(w, &win(10, 1));
        }
        assert_eq!(r.level_len(0), 4, "base level bounded");
        assert_eq!(r.evicted_buckets(0), 36);
        // The run total survives eviction exactly, at every level.
        assert_eq!(r.total().bytes, 400);
        assert_eq!(r.total().frames, 40);
        r.check_consistency().unwrap();
    }

    #[test]
    fn push_order_does_not_matter() {
        let mut fwd = MultiResRing::new(1_000_000);
        let mut rev = MultiResRing::new(1_000_000);
        let ws: Vec<u64> = (0..30).map(|i| i * 37 % 400).collect();
        for &w in &ws {
            fwd.push(w, &win(w + 1, (w % 5) as u32));
        }
        for &w in ws.iter().rev() {
            rev.push(w, &win(w + 1, (w % 5) as u32));
        }
        assert_eq!(fwd.total(), rev.total());
        for lvl in 0..fwd.depth() {
            let a: Vec<_> = fwd.windows(lvl).map(|(w, s)| (w, *s)).collect();
            let b: Vec<_> = rev.windows(lvl).map(|(w, s)| (w, *s)).collect();
            assert_eq!(a, b);
        }
    }

    proptest! {
        /// The ladder invariant holds for arbitrary sparse window
        /// streams: every coarse bucket is the exact fold of its fine
        /// buckets and every level conserves the run total.
        #[test]
        fn ladder_is_exact_on_arbitrary_input(
            ws in prop::collection::vec(0u64..5_000, 1..200),
            bytes in prop::collection::vec(1u64..100_000, 1..200),
        ) {
            let mut r = MultiResRing::new(1_000_000);
            let mut sum = 0u64;
            for (i, &w) in ws.iter().enumerate() {
                let b = bytes[i % bytes.len()];
                sum += b;
                r.push(w, &win(b, (w % 11) as u32));
            }
            prop_assert!(r.check_consistency().is_ok());
            prop_assert_eq!(r.total().bytes, sum);
            prop_assert_eq!(r.total().frames, ws.len() as u64);
        }

        /// Eviction never loses counted traffic.
        #[test]
        fn bounded_ladder_conserves(
            ws in prop::collection::vec(0u64..2_000, 1..150),
            cap in 1usize..8,
        ) {
            let mut r = MultiResRing::new(1_000_000).with_capacity(cap);
            let mut sum = 0u64;
            for &w in &ws {
                sum += w + 1;
                r.push(w, &win(w + 1, 1));
            }
            prop_assert!(r.check_consistency().is_ok());
            prop_assert_eq!(r.total().bytes, sum);
        }
    }
}
