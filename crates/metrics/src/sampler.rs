//! The fabric sampler: glue between a run and the weather map.
//!
//! [`FabricSampler`] consumes the three passive observation channels a
//! run offers and never touches the simulation itself:
//!
//! * a [`fxnet_sim::FrameTap`] ([`FabricSampler::tap`]) counting every
//!   delivered frame into the hypersparse traffic matrices — the tap
//!   runs outside the MAC state machine, so attaching it cannot perturb
//!   timing, RNG draws, or the captured trace;
//! * the per-link sample series ([`FabricSampler::ingest_links`]) the
//!   engine collects when `RunOptions::sample_links` is set, folded
//!   into one multi-resolution ring per link direction;
//! * the causal capture ([`FabricSampler::ingest_causal`]), used purely
//!   *post-run* to attribute retransmitted wire bytes to the link
//!   windows they crossed.
//!
//! [`FabricSampler::finalize`] folds everything into a
//! [`WeatherReport`]: rings, matrices, scaling relations, and the
//! topology rollup with latched hotspots.

use crate::matrix::{MatrixAccum, ScalingRelation, TrafficMatrices};
use crate::rings::{MultiResRing, DEFAULT_SCALES};
use crate::rollup::{rollup, FabricRollup, HotspotConfig};
use fxnet_sim::{CausalEvent, FrameTap, LinkStats};
use fxnet_topo::TopologySpec;
use parking_lot::Mutex;
use std::sync::Arc;

/// Sampler parameters.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Base sample window, ns (1 ms by default — the paper's traffic
    /// features live between 1 ms bursts and 1 s heartbeat periods).
    pub bin_ns: u64,
    /// The resolution ladder, multiples of the base window.
    pub scales: Vec<u64>,
    /// Hotspot detection parameters.
    pub hotspot: HotspotConfig,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            bin_ns: 1_000_000,
            scales: DEFAULT_SCALES.to_vec(),
            hotspot: HotspotConfig::default(),
        }
    }
}

/// The finished weather map of one run.
#[derive(Debug, Clone)]
pub struct WeatherReport {
    /// Base sample window, ns.
    pub bin_ns: u64,
    /// The resolution ladder.
    pub scales: Vec<u64>,
    /// One multi-resolution ring per link direction, in sampler order.
    pub rings: Vec<(String, MultiResRing)>,
    /// The hypersparse traffic matrices.
    pub matrices: TrafficMatrices,
    /// Per-scale scaling-relation summaries.
    pub scaling: Vec<ScalingRelation>,
    /// Link → node → fabric rollup with latched hotspots.
    pub rollup: FabricRollup,
}

impl WeatherReport {
    /// The hotspot flagged for `link` (direction-stripped), if any.
    pub fn hotspot(&self, link: &str) -> Option<&crate::rollup::Hotspot> {
        self.rollup.hotspots.iter().find(|h| h.link == link)
    }
}

/// Accumulates one run's passive observations into a weather report.
pub struct FabricSampler {
    cfg: SamplerConfig,
    matrices: Arc<Mutex<MatrixAccum>>,
    rings: Vec<(String, MultiResRing)>,
}

impl FabricSampler {
    /// A sampler with the default 1 ms base and ladder.
    pub fn new() -> FabricSampler {
        FabricSampler::with_config(SamplerConfig::default())
    }

    /// A sampler with explicit parameters.
    pub fn with_config(cfg: SamplerConfig) -> FabricSampler {
        let accum = MatrixAccum::new(cfg.bin_ns);
        FabricSampler {
            cfg,
            matrices: Arc::new(Mutex::new(accum)),
            rings: Vec::new(),
        }
    }

    /// The base sample window, ns — pass this as
    /// `RunOptions::sample_links` so rings and matrices share bins.
    pub fn bin_ns(&self) -> u64 {
        self.cfg.bin_ns
    }

    /// A frame tap feeding the traffic matrices. Any number of taps can
    /// be handed out; they share the accumulator. Detaching (dropping)
    /// a tap is always safe — the report just sees fewer frames.
    pub fn tap(&self) -> FrameTap {
        let shared = Arc::clone(&self.matrices);
        Box::new(move |r| {
            shared
                .lock()
                .record(r.time, r.src.0, r.dst.0, u64::from(r.wire_len));
        })
    }

    /// Fold a run's per-link sample series into the rings. Labels keep
    /// the engine's deterministic order; repeated ingestion folds.
    pub fn ingest_links(&mut self, stats: &LinkStats) {
        for (label, series) in &stats.links {
            let idx = match self.rings.iter().position(|(l, _)| l == label) {
                Some(i) => i,
                None => {
                    self.rings.push((
                        label.clone(),
                        MultiResRing::with_scales(self.cfg.bin_ns, &self.cfg.scales),
                    ));
                    self.rings.len() - 1
                }
            };
            self.rings[idx].1.ingest(series);
        }
    }

    /// Attribute retransmitted wire bytes to link windows, post-run,
    /// from the causal capture. A retransmitted frame charges the
    /// window its delivery lands in on:
    ///
    /// * the recorded bottleneck trunk's crossing direction (resolved
    ///   through the topology's host attachments; `:fwd` when the spec
    ///   is unknown),
    /// * else the sender's uplink port, if sampled,
    /// * else the shared segment (`seg:bus`), if sampled.
    ///
    /// Frames on unsampled links are skipped — attribution only ever
    /// annotates windows the link sampler saw.
    pub fn ingest_causal(&mut self, events: &[CausalEvent], spec: Option<&TopologySpec>) {
        for e in events.iter().filter(|e| e.retx) {
            let w = e.record.time.as_nanos() / self.cfg.bin_ns;
            let label = match e.meta.trunk_label() {
                Some(base) => {
                    let dir = match (fxnet_sim::FrameMeta::trunk_nodes(e.meta.trunk), spec) {
                        (Some((a, _)), Some(spec)) => {
                            let src_node = spec.attachments.get(e.record.src.0 as usize).copied();
                            if src_node == Some(a as usize) {
                                ":fwd"
                            } else {
                                ":rev"
                            }
                        }
                        _ => ":fwd",
                    };
                    format!("{base}{dir}")
                }
                None => {
                    let up = format!("host:h{}:up", e.record.src.0);
                    if self.rings.iter().any(|(l, _)| l == &up) {
                        up
                    } else {
                        "seg:bus".to_string()
                    }
                }
            };
            if let Some((_, ring)) = self.rings.iter_mut().find(|(l, _)| l == &label) {
                let win = fxnet_sim::LinkWindow {
                    retx_bytes: u64::from(e.record.wire_len),
                    ..fxnet_sim::LinkWindow::default()
                };
                ring.push(w, &win);
            }
        }
    }

    /// Fold everything observed into the finished weather report.
    pub fn finalize(self, spec: Option<&TopologySpec>) -> WeatherReport {
        let accum = std::mem::replace(&mut *self.matrices.lock(), MatrixAccum::new(1));
        let matrices = accum.finalize(&self.cfg.scales);
        let scaling = matrices.summaries();
        let roll = rollup(&self.rings, spec, &self.cfg.hotspot);
        WeatherReport {
            bin_ns: self.cfg.bin_ns,
            scales: self.cfg.scales.clone(),
            rings: self.rings,
            matrices,
            scaling,
            rollup: roll,
        }
    }
}

impl Default for FabricSampler {
    fn default() -> FabricSampler {
        FabricSampler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::{FrameKind, FrameMeta, FrameRecord, HostId, LinkSeries, Proto, SimTime};

    fn rec(ms: u64, src: u32, dst: u32, len: u32) -> FrameRecord {
        FrameRecord {
            time: SimTime::from_millis(ms),
            wire_len: len,
            proto: Proto::Tcp,
            kind: FrameKind::Data,
            src: HostId(src),
            dst: HostId(dst),
        }
    }

    #[test]
    fn tap_feeds_matrices_and_links_feed_rings() {
        let mut sampler = FabricSampler::new();
        let mut tap = sampler.tap();
        tap(&rec(0, 0, 1, 100));
        tap(&rec(0, 1, 0, 60));
        tap(&rec(12, 0, 1, 100));
        drop(tap);

        let mut series = LinkSeries::new();
        series.window_mut(0).bytes = 160;
        series.window_mut(0).frames = 2;
        series.window_mut(12).bytes = 100;
        series.window_mut(12).frames = 1;
        sampler.ingest_links(&LinkStats {
            bin_ns: 1_000_000,
            links: vec![("seg:bus".to_string(), series)],
        });

        let report = sampler.finalize(None);
        assert_eq!(report.matrices.space.len(), 2);
        assert_eq!(report.scaling[0].total_packets, 3);
        assert_eq!(report.rings.len(), 1);
        assert_eq!(report.rings[0].1.total().bytes, 260);
        report.rings[0].1.check_consistency().unwrap();
    }

    #[test]
    fn retx_attribution_lands_in_the_right_trunk_window() {
        use fxnet_sim::RATE_10M;
        let spec = TopologySpec::two_switches_trunk(4, RATE_10M);
        let mut sampler = FabricSampler::new();
        let mut series = LinkSeries::new();
        series.window_mut(3).bytes = 1000;
        sampler.ingest_links(&LinkStats {
            bin_ns: 1_000_000,
            links: vec![
                ("trunk:n0-n1:fwd".to_string(), series.clone()),
                ("trunk:n0-n1:rev".to_string(), series),
            ],
        });
        // h2 lives on node 1, so its retransmit crossed the trunk rev.
        let ev = CausalEvent {
            record: rec(3, 2, 0, 700),
            cause: fxnet_sim::CauseId::NONE,
            retx: true,
            conn: 1,
            dir: 0,
            seq: 0,
            meta: FrameMeta {
                queue_ns: 0,
                backoff_ns: 0,
                tx_ns: 0,
                attempts: 1,
                trunk: FrameMeta::trunk_code(0, 1),
            },
        };
        sampler.ingest_causal(&[ev], Some(&spec));
        let report = sampler.finalize(Some(&spec));
        let rev = report
            .rings
            .iter()
            .find(|(l, _)| l == "trunk:n0-n1:rev")
            .unwrap();
        assert_eq!(rev.1.total().retx_bytes, 700);
        let fwd = report
            .rings
            .iter()
            .find(|(l, _)| l == "trunk:n0-n1:fwd")
            .unwrap();
        assert_eq!(fwd.1.total().retx_bytes, 0);
        assert_eq!(rev.1.bucket(0, 3).unwrap().retx_bytes, 700);
    }
}
