//! Frame → phase-span attribution.
//!
//! Connects the packet trace to the phase spans: each captured frame is
//! attributed to the *named collective span* most recently begun on its
//! source rank at capture time. This is a causal rule, not a containment
//! rule — TCP ACK clocking and buffered sends put frames on the wire
//! after the collective that caused them has returned on the sending
//! rank, and those trailing frames still belong to that collective.
//!
//! Frames from hosts that run no rank (e.g. the idle workstations whose
//! PVM daemons heartbeat), and frames sent before the first collective
//! (connection establishment), stay unattributed.

use crate::span::{SpanKind, SpanRecord};
use fxnet_sim::{FrameKind, FrameRecord};

/// Result of attributing a trace against a span list.
#[derive(Debug, Clone)]
pub struct AttributedTrace {
    /// Distinct collective span names, ordered by first begin time.
    pub names: Vec<String>,
    /// For each input frame, an index into `names`, or `None`.
    pub labels: Vec<Option<usize>>,
}

impl AttributedTrace {
    /// Fraction of `FrameKind::Data` wire bytes that were attributed to a
    /// named collective span. This is the paper's causal claim made
    /// measurable: (almost) every data byte belongs to a phase.
    pub fn data_attribution_fraction(&self, trace: &[FrameRecord]) -> f64 {
        let mut total = 0u64;
        let mut attributed = 0u64;
        for (frame, label) in trace.iter().zip(&self.labels) {
            if frame.kind == FrameKind::Data {
                total += u64::from(frame.wire_len);
                if label.is_some() {
                    attributed += u64::from(frame.wire_len);
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            attributed as f64 / total as f64
        }
    }
}

/// Attribute every frame in `trace` to the last collective span begun on
/// its source rank at or before the frame's capture time. Hosts `0..ranks`
/// run rank `r` on host `r` (the testbed's placement).
pub fn attribute_collectives(
    trace: &[FrameRecord],
    spans: &[SpanRecord],
    ranks: u32,
) -> AttributedTrace {
    // Collect collective spans per rank, ordered by begin time, and build
    // the stable name table in order of first appearance on the wire clock.
    let mut names: Vec<String> = Vec::new();
    let mut by_rank: Vec<Vec<(u64, usize)>> = vec![Vec::new(); ranks as usize];
    let mut ordered: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Collective && s.rank < ranks)
        .collect();
    ordered.sort_by_key(|s| (s.begin, s.rank));
    for span in ordered {
        let idx = match names.iter().position(|n| n == &span.name) {
            Some(i) => i,
            None => {
                names.push(span.name.clone());
                names.len() - 1
            }
        };
        by_rank[span.rank as usize].push((span.begin.as_nanos(), idx));
    }

    let labels = trace
        .iter()
        .map(|frame| {
            let rank = frame.src.0;
            if rank >= ranks {
                return None;
            }
            let begun = &by_rank[rank as usize];
            // Last span with begin <= frame.time.
            let pos = begun.partition_point(|&(begin, _)| begin <= frame.time.as_nanos());
            if pos == 0 {
                None
            } else {
                Some(begun[pos - 1].1)
            }
        })
        .collect();

    AttributedTrace { names, labels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::{Frame, FrameKind, HostId, SimTime};

    fn span(rank: u32, name: &str, kind: SpanKind, begin: u64, end: u64) -> SpanRecord {
        SpanRecord {
            rank,
            name: name.into(),
            kind,
            begin: SimTime::from_micros(begin),
            end: SimTime::from_micros(end),
        }
    }

    fn data_frame(src: u32, at_us: u64) -> FrameRecord {
        FrameRecord::capture(
            SimTime::from_micros(at_us),
            &Frame::tcp(HostId(src), HostId(1), FrameKind::Data, 1460, 0),
        )
    }

    #[test]
    fn frames_attribute_to_last_begun_collective() {
        let spans = vec![
            span(0, "compute", SpanKind::Compute, 0, 100),
            span(0, "exchange", SpanKind::Collective, 100, 200),
            span(0, "reduce", SpanKind::Collective, 400, 500),
        ];
        let trace = vec![
            data_frame(0, 50),  // before any collective -> unattributed
            data_frame(0, 150), // inside exchange
            data_frame(0, 250), // trailing after exchange returned
            data_frame(0, 450), // inside reduce
            data_frame(5, 450), // non-rank host -> unattributed
        ];
        let at = attribute_collectives(&trace, &spans, 4);
        assert_eq!(at.names, vec!["exchange".to_string(), "reduce".to_string()]);
        assert_eq!(at.labels, vec![None, Some(0), Some(0), Some(1), None]);
        let frac = at.data_attribution_fraction(&trace);
        assert!((frac - 3.0 / 5.0).abs() < 1e-12, "{frac}");
    }

    #[test]
    fn empty_trace_is_fully_attributed() {
        let at = attribute_collectives(&[], &[], 4);
        assert_eq!(at.data_attribution_fraction(&[]), 1.0);
    }
}
