//! Per-run telemetry container and JSON export.

use crate::profile::SimProfile;
use crate::registry::TelemetryRegistry;
use crate::span::SpanRecord;
use serde::{Serialize, Value};

/// Everything telemetry captured for one SPMD run.
///
/// The deterministic part (spans + registry) is a pure function of the
/// run configuration and seed; the profile is wall-clock and varies
/// between runs, so it is excluded from [`RunTelemetry::to_value`] and
/// only appears in the human-readable [`RunTelemetry::summary`].
#[derive(Debug, Default)]
pub struct RunTelemetry {
    pub spans: Vec<SpanRecord>,
    pub registry: TelemetryRegistry,
    pub profile: Option<SimProfile>,
}

impl RunTelemetry {
    /// Deterministic JSON value: spans and the counter registry.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("spans".to_string(), self.spans.to_value()),
            ("registry".to_string(), self.registry.to_value()),
        ])
    }

    /// Human-readable summary: registry table plus the profile, if any.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("telemetry: {} spans\n", self.spans.len()));
        out.push_str(&self.registry.table());
        if let Some(profile) = &self.profile {
            out.push_str("profile (wall-clock, non-deterministic):\n");
            out.push_str(&profile.summary());
        }
        out
    }
}

/// Write a JSON value to `path` (pretty, trailing newline), creating
/// parent directories as needed.
pub fn write_json_artifact(
    path: impl AsRef<std::path::Path>,
    value: &Value,
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut text = serde::json::to_string_pretty(value);
    text.push('\n');
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;
    use fxnet_sim::SimTime;

    #[test]
    fn deterministic_value_excludes_profile() {
        let mut a = RunTelemetry::default();
        a.registry.set_counter("tcp.segments", 5);
        a.spans.push(SpanRecord {
            rank: 0,
            name: "exchange".into(),
            kind: SpanKind::Collective,
            begin: SimTime::from_micros(1),
            end: SimTime::from_micros(2),
        });
        let mut b = RunTelemetry::default();
        b.registry.set_counter("tcp.segments", 5);
        b.spans = a.spans.clone();
        b.profile = Some(SimProfile {
            wall: std::time::Duration::from_secs(123),
            sim_seconds: 1.0,
            ..Default::default()
        });
        assert_eq!(
            serde::json::to_string(&a.to_value()),
            serde::json::to_string(&b.to_value()),
        );
        assert!(b.summary().contains("profile"));
    }
}
