//! Prometheus text-exposition rendering of a [`TelemetryRegistry`].
//!
//! The watcher (`fxnet-watch`) and the bench harness snapshot their
//! registries into `out/*.prom` files so a scrape-based dashboard can
//! ingest simulation metrics without any bespoke parsing. The format is
//! the Prometheus text exposition format, version 0.0.4: one `# TYPE`
//! line per metric, then `name value`. Counters render as `counter`,
//! gauges as `gauge`.
//!
//! Metric names are derived from the registry's dotted names by
//! replacing every character outside `[a-zA-Z0-9_:]` with `_`
//! (`mac.collisions` → `mac_collisions`), which is the standard
//! flattening and keeps the `BTreeMap`-sorted registry order — so the
//! rendered text is deterministic and diffable across runs.

use crate::registry::TelemetryRegistry;

/// Flatten a dotted registry name into a legal Prometheus metric name.
fn metric_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Render a float the way Prometheus expects: plain decimal, with
/// `NaN`/`+Inf`/`-Inf` spelled out.
fn metric_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Render the whole registry in Prometheus text exposition format.
/// Counters first, then gauges, each in the registry's sorted order.
pub fn prometheus_text(reg: &TelemetryRegistry) -> String {
    let mut out = String::new();
    for (name, value) in reg.counters() {
        let m = metric_name(name);
        out.push_str(&format!("# TYPE {m} counter\n{m} {value}\n"));
    }
    for (name, value) in reg.gauges() {
        let m = metric_name(name);
        out.push_str(&format!("# TYPE {m} gauge\n{m} {}\n", metric_value(value)));
    }
    out
}

/// Write the registry to `path` in Prometheus text format, creating
/// parent directories as needed.
pub fn write_prometheus(
    path: impl AsRef<std::path::Path>,
    reg: &TelemetryRegistry,
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, prometheus_text(reg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_gauges_with_type_lines() {
        let mut r = TelemetryRegistry::new();
        r.set_counter("watch.frames", 12);
        r.set_gauge("watch.bw.peak", 1_250_000.5);
        let text = prometheus_text(&r);
        assert_eq!(
            text,
            "# TYPE watch_frames counter\nwatch_frames 12\n\
             # TYPE watch_bw_peak gauge\nwatch_bw_peak 1250000.5\n"
        );
    }

    #[test]
    fn sanitizes_awkward_names() {
        assert_eq!(metric_name("mac.collisions"), "mac_collisions");
        assert_eq!(metric_name("tenant/SOR bw"), "tenant_SOR_bw");
        assert_eq!(metric_name("2dfft.bytes"), "_2dfft_bytes");
    }

    #[test]
    fn non_finite_gauges_are_spelled_out() {
        let mut r = TelemetryRegistry::new();
        r.set_gauge("a.inf", f64::INFINITY);
        r.set_gauge("b.neg", f64::NEG_INFINITY);
        let text = prometheus_text(&r);
        assert!(text.contains("a_inf +Inf\n"));
        assert!(text.contains("b_neg -Inf\n"));
    }

    #[test]
    fn output_is_deterministic_across_insertion_orders() {
        let mut a = TelemetryRegistry::new();
        a.set_counter("z.last", 1);
        a.set_counter("a.first", 2);
        let mut b = TelemetryRegistry::new();
        b.set_counter("a.first", 2);
        b.set_counter("z.last", 1);
        assert_eq!(prometheus_text(&a), prometheus_text(&b));
    }
}
