//! Prometheus text-exposition rendering of a [`TelemetryRegistry`].
//!
//! The watcher (`fxnet-watch`), the metrics engine (`fxnet-metrics`),
//! and the bench harness snapshot their registries into `out/*.prom`
//! files so a scrape-based dashboard can ingest simulation metrics
//! without any bespoke parsing. The format is the Prometheus text
//! exposition format, version 0.0.4: one `# TYPE` line per metric
//! family, then `name value` samples. Counters render as `counter`,
//! gauges as `gauge`.
//!
//! Metric names are derived from the registry's dotted names by
//! replacing every character outside `[a-zA-Z0-9_:]` with `_`
//! (`mac.collisions` → `mac_collisions`), which is the standard
//! flattening and keeps the `BTreeMap`-sorted registry order — so the
//! rendered text is deterministic and diffable across runs.
//!
//! Labeled series are supported through [`labeled`], which builds a
//! registry name of the shape `family{key="value",...}`: the family and
//! label keys are sanitized, label values are escaped per the exposition
//! format (`\\`, `\"`, `\n`), and samples of one family share a single
//! `# TYPE` line. [`parse_prometheus`] round-trips the rendered text.

use crate::registry::TelemetryRegistry;

/// Flatten a dotted name into a legal Prometheus metric name.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Flatten a registry name: the family part (before any `{`) is
/// sanitized; a label block, already escaped by [`labeled`], passes
/// through untouched.
fn metric_name(name: &str) -> String {
    match name.split_once('{') {
        Some((base, rest)) => format!("{}{{{rest}", sanitize(base)),
        None => sanitize(name),
    }
}

/// The family of a rendered metric name: everything before the label
/// block.
fn family(rendered: &str) -> &str {
    rendered.split_once('{').map_or(rendered, |(b, _)| b)
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Build a labeled registry name: `family{key="value",...}`. The family
/// and label keys are sanitized to legal Prometheus identifiers; label
/// values are escaped. Registering several label sets under one family
/// yields one `# TYPE` line and one sample per set, and the registry's
/// sorted order keeps the rendering deterministic.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    let mut out = sanitize(base);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&sanitize(k));
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Render a float the way Prometheus expects: plain decimal, with
/// `NaN`/`+Inf`/`-Inf` spelled out.
fn metric_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Render the whole registry in Prometheus text exposition format.
/// Counters first, then gauges, each in the registry's sorted order;
/// consecutive samples of one family share a single `# TYPE` line.
pub fn prometheus_text(reg: &TelemetryRegistry) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for (name, value) in reg.counters() {
        let m = metric_name(name);
        let fam = family(&m);
        if fam != last_family {
            out.push_str(&format!("# TYPE {fam} counter\n"));
            last_family = fam.to_string();
        }
        out.push_str(&format!("{m} {value}\n"));
    }
    last_family.clear();
    for (name, value) in reg.gauges() {
        let m = metric_name(name);
        let fam = family(&m);
        if fam != last_family {
            out.push_str(&format!("# TYPE {fam} gauge\n"));
            last_family = fam.to_string();
        }
        out.push_str(&format!("{m} {}\n", metric_value(value)));
    }
    out
}

/// Parse Prometheus text-exposition format back into `(name, value)`
/// samples, in file order. Comment (`#`) and blank lines are skipped;
/// the name retains its label block verbatim. Returns an error naming
/// the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = split_sample(line).ok_or_else(|| malformed(ln, raw))?;
        if !valid_name(family(name)) {
            return Err(malformed(ln, raw));
        }
        let v = match value {
            "NaN" => f64::NAN,
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse::<f64>().map_err(|_| malformed(ln, raw))?,
        };
        out.push((name.to_string(), v));
    }
    Ok(out)
}

fn malformed(ln: usize, raw: &str) -> String {
    format!("malformed prometheus line {}: {raw:?}", ln + 1)
}

/// Split a sample line into `(name-with-labels, value)`, honouring
/// quoting and escapes inside the label block.
fn split_sample(line: &str) -> Option<(&str, &str)> {
    let name_end = match line.find('{') {
        Some(open) => {
            let mut in_quotes = false;
            let mut escaped = false;
            let mut close = None;
            for (i, c) in line[open..].char_indices() {
                if escaped {
                    escaped = false;
                    continue;
                }
                match c {
                    '\\' if in_quotes => escaped = true,
                    '"' => in_quotes = !in_quotes,
                    '}' if !in_quotes => {
                        close = Some(open + i + 1);
                        break;
                    }
                    _ => {}
                }
            }
            close?
        }
        None => line.find(char::is_whitespace)?,
    };
    let (name, rest) = line.split_at(name_end);
    let value = rest.trim();
    if name.is_empty() || value.is_empty() || value.contains(char::is_whitespace) {
        return None;
    }
    Some((name, value))
}

/// Whether `name` is a legal Prometheus metric-family name.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Write the registry to `path` in Prometheus text format, creating
/// parent directories as needed.
pub fn write_prometheus(
    path: impl AsRef<std::path::Path>,
    reg: &TelemetryRegistry,
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, prometheus_text(reg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_gauges_with_type_lines() {
        let mut r = TelemetryRegistry::new();
        r.set_counter("watch.frames", 12);
        r.set_gauge("watch.bw.peak", 1_250_000.5);
        let text = prometheus_text(&r);
        assert_eq!(
            text,
            "# TYPE watch_frames counter\nwatch_frames 12\n\
             # TYPE watch_bw_peak gauge\nwatch_bw_peak 1250000.5\n"
        );
    }

    #[test]
    fn sanitizes_awkward_names() {
        assert_eq!(metric_name("mac.collisions"), "mac_collisions");
        assert_eq!(metric_name("tenant/SOR bw"), "tenant_SOR_bw");
        assert_eq!(metric_name("2dfft.bytes"), "_2dfft_bytes");
    }

    #[test]
    fn non_finite_gauges_are_spelled_out() {
        let mut r = TelemetryRegistry::new();
        r.set_gauge("a.inf", f64::INFINITY);
        r.set_gauge("b.neg", f64::NEG_INFINITY);
        let text = prometheus_text(&r);
        assert!(text.contains("a_inf +Inf\n"));
        assert!(text.contains("b_neg -Inf\n"));
    }

    #[test]
    fn output_is_deterministic_across_insertion_orders() {
        let mut a = TelemetryRegistry::new();
        a.set_counter("z.last", 1);
        a.set_counter("a.first", 2);
        let mut b = TelemetryRegistry::new();
        b.set_counter("a.first", 2);
        b.set_counter("z.last", 1);
        assert_eq!(prometheus_text(&a), prometheus_text(&b));
    }

    #[test]
    fn labeled_escapes_values_and_sanitizes_keys() {
        let name = labeled("fabric.link.util", &[("link", "trunk:n0-n1:fwd")]);
        assert_eq!(name, "fabric_link_util{link=\"trunk:n0-n1:fwd\"}");
        let tricky = labeled("m", &[("the key", "a\\b\"c\nd")]);
        assert_eq!(tricky, "m{the_key=\"a\\\\b\\\"c\\nd\"}");
    }

    #[test]
    fn one_type_line_per_labeled_family() {
        let mut r = TelemetryRegistry::new();
        r.set_gauge(labeled("link.util", &[("link", "a")]), 0.5);
        r.set_gauge(labeled("link.util", &[("link", "b")]), 0.7);
        let text = prometheus_text(&r);
        assert_eq!(text.matches("# TYPE link_util gauge").count(), 1);
        assert_eq!(
            text,
            "# TYPE link_util gauge\n\
             link_util{link=\"a\"} 0.5\n\
             link_util{link=\"b\"} 0.7\n"
        );
    }

    #[test]
    fn rendered_names_are_valid_and_ordering_is_stable() {
        let mut r = TelemetryRegistry::new();
        r.set_counter("9starts.with.digit", 3);
        r.set_counter(labeled("fam", &[("x", "1")]), 1);
        r.set_counter(labeled("fam", &[("x", "2")]), 2);
        r.set_gauge("g", 1.0);
        let text = prometheus_text(&r);
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, _) = split_sample(line).expect("sample line");
            assert!(valid_name(family(name)), "{name}");
        }
        // Sorted registry order survives rendering.
        let again = prometheus_text(&r);
        assert_eq!(text, again);
        let fam_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("fam{")).collect();
        assert_eq!(
            fam_lines,
            vec!["fam{x=\"1\"} 1", "fam{x=\"2\"} 2"],
            "label sets of one family are adjacent and sorted"
        );
    }

    #[test]
    fn parse_round_trips_labeled_text() {
        let mut r = TelemetryRegistry::new();
        r.set_counter(labeled("link.bytes", &[("link", "trunk:n0-n1:fwd")]), 1234);
        r.set_gauge(labeled("link.util", &[("link", "seg:seg0")]), 0.25);
        r.set_gauge("plain", -3.5);
        let text = prometheus_text(&r);
        let parsed = parse_prometheus(&text).expect("well-formed");
        assert_eq!(
            parsed,
            vec![
                (
                    "link_bytes{link=\"trunk:n0-n1:fwd\"}".to_string(),
                    1234.0f64
                ),
                ("link_util{link=\"seg:seg0\"}".to_string(), 0.25),
                ("plain".to_string(), -3.5),
            ]
        );
    }

    #[test]
    fn parse_handles_escapes_and_rejects_malformed() {
        let parsed =
            parse_prometheus("m{k=\"a \\\"quoted\\\" } brace\"} 7\n").expect("escaped label");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].1, 7.0);
        assert!(parse_prometheus("no_value\n").is_err());
        assert!(parse_prometheus("bad name 1 2\n").is_err());
        assert!(parse_prometheus("9digit 1\n").is_err());
        assert!(parse_prometheus("m NaN\n").expect("NaN")[0].1.is_nan());
        assert_eq!(
            parse_prometheus("m +Inf\n").expect("inf")[0].1,
            f64::INFINITY
        );
    }
}
