//! Simulator self-profiling: how fast the simulator itself runs.
//!
//! Wall-clock measurements are inherently non-deterministic, so the
//! profile is kept OUT of the deterministic telemetry artifact (see
//! [`crate::RunTelemetry`]) and only surfaced in the human-readable
//! summary. What is recorded per run: wall seconds per simulated second,
//! events processed per wall second, and a log₂ timing histogram per
//! engine event type.

use std::time::Duration;

/// Number of log₂(ns) buckets: bucket i covers [2^i, 2^(i+1)) ns,
/// with the last bucket open-ended.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// Log₂ histogram of per-event wall-clock processing times.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimingHistogram {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub total_ns: u64,
}

impl TimingHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        let bucket = if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ns += ns;
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Compact sparkline-style rendering: `2^i:count` for non-empty buckets.
    pub fn summary(&self) -> String {
        let cells: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| format!("2^{i}ns:{c}"))
            .collect();
        cells.join(" ")
    }
}

/// One engine event class, for per-type profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    Compute,
    Send,
    Recv,
    Barrier,
    Span,
    NetAdvance,
}

impl EventClass {
    pub const ALL: [EventClass; 6] = [
        EventClass::Compute,
        EventClass::Send,
        EventClass::Recv,
        EventClass::Barrier,
        EventClass::Span,
        EventClass::NetAdvance,
    ];

    pub fn label(self) -> &'static str {
        match self {
            EventClass::Compute => "compute",
            EventClass::Send => "send",
            EventClass::Recv => "recv",
            EventClass::Barrier => "barrier",
            EventClass::Span => "span",
            EventClass::NetAdvance => "net_advance",
        }
    }
}

/// The per-run simulator profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimProfile {
    /// Total wall-clock time of the run.
    pub wall: Duration,
    /// Total simulated time covered.
    pub sim_seconds: f64,
    /// Total engine events processed.
    pub events: u64,
    /// Per-event-type wall-clock timing histograms, indexed like
    /// [`EventClass::ALL`].
    pub histograms: [TimingHistogram; 6],
}

impl SimProfile {
    pub fn record(&mut self, class: EventClass, elapsed: Duration) {
        let idx = EventClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class in ALL");
        self.histograms[idx].record(elapsed);
        self.events += 1;
    }

    /// Wall seconds needed per simulated second (lower is faster).
    pub fn wall_per_sim_second(&self) -> f64 {
        if self.sim_seconds <= 0.0 {
            0.0
        } else {
            self.wall.as_secs_f64() / self.sim_seconds
        }
    }

    /// Engine events processed per wall second.
    pub fn events_per_second(&self) -> f64 {
        let w = self.wall.as_secs_f64();
        if w <= 0.0 {
            0.0
        } else {
            self.events as f64 / w
        }
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  wall {:.3}s for {:.3} sim-s  ({:.3} wall-s/sim-s, {:.0} events/s, {} events)\n",
            self.wall.as_secs_f64(),
            self.sim_seconds,
            self.wall_per_sim_second(),
            self.events_per_second(),
            self.events,
        ));
        for (class, hist) in EventClass::ALL.iter().zip(&self.histograms) {
            if hist.count > 0 {
                out.push_str(&format!(
                    "  {:<12} {:>9} events  mean {:>8.0}ns  [{}]\n",
                    class.label(),
                    hist.count,
                    hist.mean_ns(),
                    hist.summary(),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = TimingHistogram::new();
        h.record(Duration::from_nanos(1)); // bucket 0
        h.record(Duration::from_nanos(3)); // bucket 1
        h.record(Duration::from_nanos(1024)); // bucket 10
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[10], 1);
        assert!(h.mean_ns() > 300.0);
        assert!(h.summary().contains("2^10ns:1"));
    }

    #[test]
    fn profile_rates() {
        let mut p = SimProfile {
            wall: Duration::from_secs(2),
            sim_seconds: 4.0,
            ..Default::default()
        };
        p.record(EventClass::Send, Duration::from_nanos(100));
        p.record(EventClass::NetAdvance, Duration::from_nanos(50));
        assert_eq!(p.events, 2);
        assert!((p.wall_per_sim_second() - 0.5).abs() < 1e-12);
        assert!((p.events_per_second() - 1.0).abs() < 1e-12);
        assert!(p.summary().contains("net_advance"));
    }
}
