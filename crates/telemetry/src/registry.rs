//! The unified counter/gauge registry.
//!
//! Every layer of the stack (MAC, TCP, PVM, engine) snapshots its
//! counters into one [`TelemetryRegistry`] at the end of a run, under
//! dotted names (`mac.collisions`, `tcp.segments`, `pvm.fragments`,
//! `engine.events.send`, ...). Keys are kept in a `BTreeMap`, so
//! iteration order — and therefore JSON export — is deterministic.

use serde::{Serialize, Value};
use std::collections::BTreeMap;

/// A flat, deterministic map of named counters (u64) and gauges (f64).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl TelemetryRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a counter to an absolute value (snapshot style).
    pub fn set_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.insert(name.into(), value);
    }

    /// Add to a counter, creating it at zero.
    pub fn add_counter(&mut self, name: impl Into<String>, delta: u64) {
        *self.counters.entry(name.into()).or_insert(0) += delta;
    }

    /// Read a counter; missing counters read as zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn set_gauge(&mut self, name: impl Into<String>, value: f64) {
        self.gauges.insert(name.into(), value);
    }

    /// Read a gauge; missing gauges read as NaN-free zero.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Render as an aligned two-column text table, grouped by the dotted
    /// prefix (one blank line between groups).
    pub fn table(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        let mut last_group: Option<&str> = None;
        let mut rows: Vec<(&str, String)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.as_str(), v.to_string()))
            .collect();
        rows.extend(
            self.gauges
                .iter()
                .map(|(k, v)| (k.as_str(), format!("{v:.3}"))),
        );
        rows.sort_by(|a, b| a.0.cmp(b.0));
        for (key, value) in rows {
            let group = key.split('.').next().unwrap_or(key);
            if let Some(prev) = last_group {
                if prev != group {
                    out.push('\n');
                }
            }
            last_group = Some(group);
            out.push_str(&format!("  {key:<width$}  {value}\n"));
        }
        out
    }
}

impl Serialize for TelemetryRegistry {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "counters".to_string(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::U64(v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Value::Object(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::F64(v)))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut r = TelemetryRegistry::new();
        r.add_counter("tcp.segments", 3);
        r.add_counter("tcp.segments", 4);
        r.set_counter("mac.collisions", 9);
        r.set_gauge("engine.events_per_sec", 1.5);
        assert_eq!(r.counter("tcp.segments"), 7);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("engine.events_per_sec"), 1.5);
        let table = r.table();
        assert!(table.contains("tcp.segments"));
        assert!(table.contains('7'));
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let mut a = TelemetryRegistry::new();
        a.set_counter("z.last", 1);
        a.set_counter("a.first", 2);
        let mut b = TelemetryRegistry::new();
        b.set_counter("a.first", 2);
        b.set_counter("z.last", 1);
        assert_eq!(serde::json::to_string(&a), serde::json::to_string(&b));
        let text = serde::json::to_string(&a);
        assert!(text.find("a.first").unwrap() < text.find("z.last").unwrap());
    }
}
