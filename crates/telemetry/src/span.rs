//! Phase-span records: which phase each rank was in, in simulated time.
//!
//! The SPMD engine emits one [`SpanRecord`] per completed phase on each
//! rank: local compute phases, named collective communication phases
//! (opened by the application or by the `fxnet-fx` collective helpers),
//! and engine-detected blocking intervals (blocked on a `recv`, on a full
//! send buffer, or at a barrier). Spans carry simulated-time begin/end
//! stamps, so they compose exactly with the packet trace.

use fxnet_sim::SimTime;
use serde::{Deserialize, Serialize};

/// What kind of phase a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpanKind {
    /// A local computation phase.
    Compute,
    /// A named communication phase (a compiler-generated collective).
    Collective,
    /// Blocked waiting for an incoming message.
    BlockedRecv,
    /// Blocked on a full sender-side socket buffer.
    BlockedSend,
    /// Blocked waiting for a barrier to complete.
    Barrier,
}

impl SpanKind {
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Collective => "collective",
            SpanKind::BlockedRecv => "blocked_recv",
            SpanKind::BlockedSend => "blocked_send",
            SpanKind::Barrier => "barrier",
        }
    }
}

/// One completed phase on one rank, `[begin, end]` in simulated time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    pub rank: u32,
    pub name: String,
    pub kind: SpanKind,
    pub begin: SimTime,
    pub end: SimTime,
}

impl SpanRecord {
    pub fn duration(&self) -> SimTime {
        SimTime::from_nanos(self.end.as_nanos().saturating_sub(self.begin.as_nanos()))
    }
}

/// Accumulates spans during a run; one per engine.
///
/// The engine is the only writer, but the collector sits behind a
/// `parking_lot` mutex so the registry snapshot can be assembled from the
/// sequencer thread while rank threads are still winding down.
#[derive(Debug, Default)]
pub struct SpanCollector {
    spans: parking_lot::Mutex<Vec<SpanRecord>>,
}

impl SpanCollector {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&self, span: SpanRecord) {
        self.spans.lock().push(span);
    }

    /// Drain all recorded spans, ordered by (begin, rank, name) so the
    /// output is independent of record interleaving.
    pub fn into_spans(self) -> Vec<SpanRecord> {
        let mut spans = self.spans.into_inner();
        spans.sort_by(|a, b| {
            (a.begin, a.rank, &a.name, a.end).cmp(&(b.begin, b.rank, &b.name, b.end))
        });
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_orders_spans() {
        let c = SpanCollector::new();
        for (rank, begin) in [(1u32, 50u64), (0, 10), (0, 50)] {
            c.record(SpanRecord {
                rank,
                name: "x".into(),
                kind: SpanKind::Compute,
                begin: SimTime::from_nanos(begin),
                end: SimTime::from_nanos(begin + 5),
            });
        }
        let spans = c.into_spans();
        assert_eq!(
            spans
                .iter()
                .map(|s| (s.begin.as_nanos(), s.rank))
                .collect::<Vec<_>>(),
            vec![(10, 0), (50, 0), (50, 1)]
        );
    }

    #[test]
    fn span_round_trips_through_json() {
        let s = SpanRecord {
            rank: 3,
            name: "neighbor_exchange".into(),
            kind: SpanKind::Collective,
            begin: SimTime::from_micros(10),
            end: SimTime::from_micros(25),
        };
        let text = serde::json::to_string(&s);
        let back: SpanRecord = serde::json::from_str(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.duration(), SimTime::from_micros(15));
    }
}
