//! # fxnet-telemetry
//!
//! Cross-layer instrumentation for the fxnet stack, making the paper's
//! causal claim — every traffic burst is caused by a specific
//! compiler-generated collective phase — measurable instead of asserted:
//!
//! * [`span`] — per-rank phase spans (compute, named collective,
//!   blocked) with simulated-time begin/end, emitted by the SPMD engine.
//! * [`attribution`] — tags every captured frame with the collective
//!   span active on its source rank, yielding the per-phase traffic
//!   tables of the `repro -- phases` experiment.
//! * [`registry`] — the unified counter/gauge registry that MAC, TCP,
//!   PVM and engine counters snapshot into at the end of a run.
//! * [`profile`] — simulator self-profiling (wall-clock per simulated
//!   second, events/sec, per-event-type timing histograms); deliberately
//!   excluded from the deterministic JSON artifact.
//! * [`run`] — the per-run container and the JSON export path shared by
//!   all `out/telemetry_<exp>.json` artifacts.
//!
//! Only `parking_lot` and `serde` (plus `fxnet-sim` for time/frame
//! types) are dependencies; the layer adds nothing to the simulation
//! itself and, when disabled, costs nothing on the hot path.

pub mod attribution;
pub mod profile;
pub mod prometheus;
pub mod registry;
pub mod run;
pub mod span;

pub use attribution::{attribute_collectives, AttributedTrace};
pub use profile::{EventClass, SimProfile, TimingHistogram};
pub use prometheus::{labeled, parse_prometheus, prometheus_text, write_prometheus};
pub use registry::TelemetryRegistry;
pub use run::{write_json_artifact, RunTelemetry};
pub use span::{SpanCollector, SpanKind, SpanRecord};
