//! # fxnet
//!
//! A from-scratch reproduction of *"The Measured Network Traffic of
//! Compiler-Parallelized Programs"* (Dinda, Garcia, Leung — CMU-CS-98-144
//! / ICPP): the complete measurement stack, the six measured programs,
//! the trace analyses behind every figure, the spectral traffic models of
//! §7.2, and the QoS negotiation model of §7.3 — all over a simulated
//! 10 Mb/s shared Ethernet of Alpha-class workstations.
//!
//! ## Quick start
//!
//! ```
//! use fxnet::{KernelKind, TestbedBuilder};
//! use fxnet::trace::TraceStore;
//!
//! // The paper's environment: P=4 tasks on a 9-workstation shared LAN,
//! // scaled down 50× on the outer iteration count for a fast run.
//! let tb = TestbedBuilder::paper().seed(7).build();
//! let run = tb.run_kernel(KernelKind::Hist, 50).expect("valid config");
//! // Columnar analysis: one store, zero-copy views, fused kernels.
//! let store = TraceStore::from_records(&run.trace);
//! let sizes = store.view().packet_sizes().unwrap();
//! assert_eq!(sizes.min, 58.0);               // pure TCP ACKs
//! assert!(store.view().average_bandwidth().unwrap() < 1_250_000.0);
//! // Per-connection stats are an index lookup, not a filtered copy.
//! let ((src, dst), _) = store.host_pairs()[0];
//! assert!(!store.connection(src, dst).is_empty());
//! ```
//!
//! ## Layer map
//!
//! | layer | crate | re-export |
//! |---|---|---|
//! | CSMA/CD Ethernet, frames, simulated time | `fxnet-sim` | [`sim`] |
//! | multi-segment switched topologies | `fxnet-topo` | [`topo`] |
//! | sharded parallel DES core | `fxnet-shard` | [`shard`] |
//! | TCP/UDP stack | `fxnet-proto` | [`proto`] |
//! | PVM message passing | `fxnet-pvm` | [`pvm`] |
//! | SPMD runtime, patterns, cost model | `fxnet-fx` | [`fx`] |
//! | FFT/SOR/LU numerics | `fxnet-numerics` | [`numerics`] |
//! | the six measured programs | `fxnet-apps` | [`apps`] |
//! | trace statistics, bandwidth, spectra | `fxnet-trace` | [`trace`] |
//! | phase spans, counter registry, profiling | `fxnet-telemetry` | [`telemetry`] |
//! | Fourier traffic models + media baselines | `fxnet-spectral` | [`spectral`] |
//! | QoS negotiation | `fxnet-qos` | [`qos`] |
//! | multi-tenant mixing, admission, interference | `fxnet-mix` | [`mix`] |
//! | streaming trace watch, contract compliance | `fxnet-watch` | [`watch`] |
//! | causal provenance, critical paths, blame | `fxnet-causal` | [`causal`] |
//! | deterministic parallel experiment runner | `fxnet-harness` | [`harness`] |

pub use fxnet_apps as apps;
pub use fxnet_causal as causal;
pub use fxnet_fx as fx;
pub use fxnet_harness as harness;
pub use fxnet_metrics as metrics;
pub use fxnet_mix as mix;
pub use fxnet_numerics as numerics;
pub use fxnet_proto as proto;
pub use fxnet_pvm as pvm;
pub use fxnet_qos as qos;
pub use fxnet_shard as shard;
pub use fxnet_sim as sim;
pub use fxnet_spectral as spectral;
pub use fxnet_telemetry as telemetry;
pub use fxnet_topo as topo;
pub use fxnet_trace as trace;
pub use fxnet_watch as watch;

mod testbed;

pub use fxnet_apps::KernelKind;
pub use fxnet_fx::{
    run, run_single, AppOp, CausalRun, DescheduleConfig, FxnetError, FxnetResult, GroupSpec,
    MultiRunResult, RankCtx, RunOptions, RunResult, SpmdConfig,
};
pub use fxnet_sim::{FrameRecord, HostId, SimTime};
pub use fxnet_topo::TopologySpec;
pub use testbed::{Testbed, TestbedBuilder};
