//! The measurement testbed: the paper's nine-workstation environment as
//! one configurable builder.

use fxnet_apps::{airshed, KernelKind};
use fxnet_fx::{
    run_single, DescheduleConfig, FxnetResult, RankCtx, RunOptions, RunResult, SpmdConfig,
};
use fxnet_proto::LinkKind;
use fxnet_pvm::Route;
use fxnet_sim::{FrameTap, SimTime, SwitchConfig};
use std::cell::RefCell;

/// Builder for a [`Testbed`]: one fluent surface over everything the
/// experiments vary — topology, seed, telemetry, frame taps, DES shard
/// count — replacing the old `with_*` constructor sprawl.
///
/// ```
/// use fxnet::TestbedBuilder;
/// let tb = TestbedBuilder::paper().seed(7).telemetry().build();
/// ```
pub struct TestbedBuilder {
    cfg: SpmdConfig,
    tap: Option<FrameTap>,
}

impl TestbedBuilder {
    /// Start from the paper's configuration: programs compiled for P=4 on
    /// a LAN of 9 workstations (idle machines contribute only daemon
    /// chatter; one is the tcpdump tracer).
    pub fn paper() -> TestbedBuilder {
        TestbedBuilder {
            cfg: SpmdConfig {
                p: 4,
                hosts: 9,
                seed: 1998,
                ..SpmdConfig::default()
            },
            tap: None,
        }
    }

    /// Start from a minimal quiet testbed for unit-style experiments:
    /// `p` hosts, no daemon heartbeats.
    pub fn quiet(p: u32) -> TestbedBuilder {
        let mut cfg = SpmdConfig {
            p,
            hosts: p.max(2),
            ..SpmdConfig::default()
        };
        cfg.pvm.heartbeat = None;
        TestbedBuilder { cfg, tap: None }
    }

    /// Override the processor count the programs are compiled for.
    pub fn p(mut self, p: u32) -> TestbedBuilder {
        self.cfg.p = p;
        self.cfg.hosts = self.cfg.hosts.max(p);
        self
    }

    /// Override the simulation seed.
    pub fn seed(mut self, seed: u64) -> TestbedBuilder {
        self.cfg.seed = seed;
        self.cfg.pvm.net.seed = seed ^ 0x00C0_FFEE;
        self
    }

    /// Select the PVM routing mechanism (direct TCP vs daemon UDP).
    pub fn route(mut self, route: Route) -> TestbedBuilder {
        self.cfg.pvm.route = route;
        self
    }

    /// Enable OS deschedule injection (§6.1's burst-merging artifact).
    pub fn deschedule(mut self, mean_cpu_between: SimTime, duration: SimTime) -> TestbedBuilder {
        self.cfg.deschedule = Some(DescheduleConfig {
            mean_cpu_between,
            duration,
        });
        self
    }

    /// Make the bus lossy (frame corruption probability) — the failure-
    /// injection extension; TCP recovers by go-back-N retransmission.
    pub fn loss(mut self, drop_prob: f64) -> TestbedBuilder {
        self.cfg.pvm.net.ether.drop_prob = drop_prob;
        self
    }

    /// Change the LAN's raw bit rate (default 10 Mb/s). The paper's
    /// point that burst periodicity is *bandwidth dependent* (§7.3,
    /// conclusions) can be demonstrated by sweeping this.
    pub fn bandwidth_bps(mut self, bps: u64) -> TestbedBuilder {
        self.cfg.pvm.net.ether.bandwidth_bps = bps;
        self
    }

    /// Replace the shared collision domain with a store-and-forward
    /// switch (per-host full-duplex 10 Mb/s ports) — the DESIGN.md §8
    /// ablation isolating the MAC layer's contribution to burst shaping.
    pub fn switched_fabric(mut self) -> TestbedBuilder {
        self.cfg.pvm.net.link = LinkKind::Switched(SwitchConfig::default());
        self
    }

    /// Replace the link layer with a declarative multi-segment topology
    /// (DESIGN.md §11). The LAN's host count follows the spec's
    /// attachment list (it must cover at least the compiled ranks plus
    /// the tracer, which the engine validates at run time), so host
    /// placement — which ranks share a segment, which contend only on a
    /// trunk — is controlled by the spec.
    pub fn topology(mut self, spec: fxnet_topo::TopologySpec) -> TestbedBuilder {
        self.cfg.hosts = spec.host_count() as u32;
        self.cfg.pvm.net.link = LinkKind::Topology(spec);
        self
    }

    /// Enable or disable the PVM daemons' periodic UDP chatter
    /// (enabled by default on the paper testbed).
    pub fn heartbeats(mut self, on: bool) -> TestbedBuilder {
        if on {
            self.cfg.pvm.heartbeat = fxnet_pvm::PvmConfig::default().heartbeat;
        } else {
            self.cfg.pvm.heartbeat = None;
        }
        self
    }

    /// Enable telemetry collection: phase spans, the cross-layer counter
    /// registry, and the simulator self-profile appear in
    /// [`RunResult::telemetry`]. The packet trace is unchanged.
    pub fn telemetry(self) -> TestbedBuilder {
        self.telemetry_enabled(true)
    }

    /// [`TestbedBuilder::telemetry`] with an explicit flag, for callers
    /// that thread the decision through.
    pub fn telemetry_enabled(mut self, on: bool) -> TestbedBuilder {
        self.cfg.telemetry = on;
        self
    }

    /// Install a live frame tap at the promiscuous capture point (see
    /// [`fxnet_sim::FrameTap`]). The tap is handed to the first run the
    /// built testbed executes; it observes every delivered frame and
    /// cannot perturb the simulation.
    pub fn tap(mut self, tap: FrameTap) -> TestbedBuilder {
        self.tap = Some(tap);
        self
    }

    /// Partition multi-segment topologies across `n` DES shards
    /// (`fxnet-shard`). `1` (the default) runs the legacy sequential
    /// fabric; any count produces byte-identical traces, watch events,
    /// causal DAGs, and metrics. Ignored by the shared bus and the
    /// switch counterfactual.
    pub fn shards(mut self, n: usize) -> TestbedBuilder {
        self.cfg.pvm.net.shards = n.max(1);
        self
    }

    /// Finish: produce the configured [`Testbed`].
    pub fn build(self) -> Testbed {
        Testbed {
            cfg: self.cfg,
            tap: RefCell::new(self.tap),
        }
    }
}

/// The simulated testbed of §5.1: DEC 3000/400-class workstations on a
/// single bridged 10 Mb/s Ethernet collision domain, PVM 3.3-style
/// message passing, one promiscuous tracer. Build one with
/// [`TestbedBuilder`] (or the [`Testbed::paper`] / [`Testbed::quiet`]
/// shortcuts), then run kernels or arbitrary SPMD programs on it.
pub struct Testbed {
    cfg: SpmdConfig,
    /// Frame tap staged by [`TestbedBuilder::tap`], consumed by the
    /// first run (a tap is a `FnMut` box and cannot be cloned).
    tap: RefCell<Option<FrameTap>>,
}

impl Clone for Testbed {
    /// Clones the configuration only: a staged frame tap (an opaque
    /// `FnMut`) stays with the original.
    fn clone(&self) -> Testbed {
        Testbed {
            cfg: self.cfg.clone(),
            tap: RefCell::new(None),
        }
    }
}

impl std::fmt::Debug for Testbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Testbed")
            .field("cfg", &self.cfg)
            .field("tap", &self.tap.borrow().is_some())
            .finish()
    }
}

impl Testbed {
    /// The paper's configuration ([`TestbedBuilder::paper`] built as-is).
    pub fn paper() -> Testbed {
        TestbedBuilder::paper().build()
    }

    /// A minimal quiet testbed ([`TestbedBuilder::quiet`] built as-is).
    pub fn quiet(p: u32) -> Testbed {
        TestbedBuilder::quiet(p).build()
    }

    /// Start a builder from the paper configuration — equivalent to
    /// [`TestbedBuilder::paper`].
    pub fn builder() -> TestbedBuilder {
        TestbedBuilder::paper()
    }

    /// Access the full configuration for fine-grained control.
    pub fn config(&self) -> &SpmdConfig {
        &self.cfg
    }

    /// Mutable access to the full configuration.
    pub fn config_mut(&mut self) -> &mut SpmdConfig {
        &mut self.cfg
    }

    /// Fold the testbed's staged state (a builder-installed tap) into a
    /// caller's options. Explicit options win; the staged tap feeds the
    /// first run that has none.
    fn fold_opts(&self, mut opts: RunOptions) -> RunOptions {
        if opts.tap.is_none() {
            opts.tap = self.tap.borrow_mut().take();
        }
        opts
    }

    /// Run one of the five kernels at paper scale with the outer
    /// iteration count divided by `iter_div` (1 = the full measured run).
    ///
    /// # Errors
    /// Propagates any [`fxnet_fx::FxnetError`] from the engine (invalid
    /// config, deadlock, runaway clock).
    pub fn run_kernel(&self, kernel: KernelKind, iter_div: usize) -> FxnetResult<RunResult<u64>> {
        self.run_kernel_opts(kernel, iter_div, RunOptions::default())
    }

    /// [`Testbed::run_kernel`] with explicit [`RunOptions`] — the hook
    /// the observability experiments use to attach a frame tap, causal
    /// capture, or per-link sampling to a kernel run.
    ///
    /// # Errors
    /// Propagates any [`fxnet_fx::FxnetError`] from the engine.
    pub fn run_kernel_opts(
        &self,
        kernel: KernelKind,
        iter_div: usize,
        opts: RunOptions,
    ) -> FxnetResult<RunResult<u64>> {
        kernel.run_paper_opts(self.cfg.clone(), iter_div, self.fold_opts(opts))
    }

    /// Run the AIRSHED skeleton with explicit parameters.
    ///
    /// # Errors
    /// Propagates any [`fxnet_fx::FxnetError`] from the engine.
    pub fn run_airshed(&self, params: airshed::AirshedParams) -> FxnetResult<RunResult<u64>> {
        run_single(
            self.cfg.clone(),
            move |ctx| airshed::airshed_rank(ctx, &params),
            self.fold_opts(RunOptions::default()),
        )
    }

    /// Run an arbitrary SPMD program on the testbed.
    ///
    /// Panics on engine errors (deadlock, runaway clock) — ad-hoc
    /// programs are test code; use [`Testbed::try_run`] to handle them.
    pub fn run<T, F>(&self, f: F) -> RunResult<T>
    where
        T: Send + 'static,
        F: Fn(&mut RankCtx) -> T + Send + Sync + 'static,
    {
        match self.try_run(f) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Run an arbitrary SPMD program, surfacing engine errors.
    ///
    /// # Errors
    /// Propagates any [`fxnet_fx::FxnetError`] from the engine.
    pub fn try_run<T, F>(&self, f: F) -> FxnetResult<RunResult<T>>
    where
        T: Send + 'static,
        F: Fn(&mut RankCtx) -> T + Send + Sync + 'static,
    {
        self.try_run_opts(f, RunOptions::default())
    }

    /// [`Testbed::try_run`] with explicit [`RunOptions`].
    ///
    /// # Errors
    /// Propagates any [`fxnet_fx::FxnetError`] from the engine.
    pub fn try_run_opts<T, F>(&self, f: F, opts: RunOptions) -> FxnetResult<RunResult<T>>
    where
        T: Send + 'static,
        F: Fn(&mut RankCtx) -> T + Send + Sync + 'static,
    {
        run_single(self.cfg.clone(), f, self.fold_opts(opts))
    }

    /// Start building a multi-tenant mixed run on this testbed: add
    /// tenants with [`fxnet_mix::Mix::tenant`], then
    /// [`fxnet_mix::Mix::run`].
    pub fn mix(&self) -> fxnet_mix::Mix {
        fxnet_mix::Mix::new(self.cfg.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::Proto;

    #[test]
    fn paper_testbed_shape() {
        let tb = Testbed::paper();
        assert_eq!(tb.config().p, 4);
        assert_eq!(tb.config().hosts, 9);
    }

    #[test]
    fn builder_overrides_land_in_the_config() {
        let tb = TestbedBuilder::paper().seed(7).telemetry().build();
        assert_eq!(tb.config().seed, 7);
        assert!(tb.config().telemetry);
        let tb = TestbedBuilder::quiet(4)
            .loss(0.05)
            .bandwidth_bps(100_000_000)
            .build();
        assert_eq!(tb.config().pvm.net.ether.drop_prob, 0.05);
        assert_eq!(tb.config().pvm.net.ether.bandwidth_bps, 100_000_000);
    }

    #[test]
    fn builder_tap_feeds_the_first_run() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(0usize));
        let sink = Arc::clone(&seen);
        let tb = TestbedBuilder::quiet(4)
            .seed(7)
            .tap(Box::new(move |_| *sink.lock().unwrap() += 1))
            .build();
        let run = tb.run_kernel(KernelKind::Seq, 100).unwrap();
        assert_eq!(*seen.lock().unwrap(), run.trace.len());
        // The tap is consumed: a second run observes nothing more.
        let n = *seen.lock().unwrap();
        tb.run_kernel(KernelKind::Seq, 100).unwrap();
        assert_eq!(*seen.lock().unwrap(), n);
    }

    #[test]
    fn builder_shards_produce_identical_kernel_traces() {
        let rate = fxnet_sim::RATE_10M;
        let base = TestbedBuilder::paper()
            .seed(7)
            .topology(fxnet_topo::TopologySpec::two_switches_trunk(9, rate))
            .build()
            .run_kernel(KernelKind::Hist, 100)
            .unwrap();
        for shards in [2usize, 4] {
            let run = TestbedBuilder::paper()
                .seed(7)
                .topology(fxnet_topo::TopologySpec::two_switches_trunk(9, rate))
                .shards(shards)
                .build()
                .run_kernel(KernelKind::Hist, 100)
                .unwrap();
            assert_eq!(base.trace, run.trace, "{shards} shards");
        }
    }

    #[test]
    fn run_kernel_opts_samples_links_without_perturbing() {
        let tb = Testbed::quiet(4);
        let plain = tb.run_kernel(KernelKind::Seq, 100).unwrap();
        let opts = RunOptions {
            sample_links: Some(1_000_000),
            ..RunOptions::default()
        };
        let sampled = tb.run_kernel_opts(KernelKind::Seq, 100, opts).unwrap();
        assert!(plain.link_stats.is_none());
        let stats = sampled.link_stats.as_ref().expect("sampled link stats");
        assert!(stats.links.iter().any(|(_, s)| !s.is_empty()));
        assert_eq!(plain.trace, sampled.trace, "sampling must not perturb");
    }

    #[test]
    fn heartbeats_from_idle_machines_present_by_default() {
        // Even a compute-only program sees daemon UDP chatter from the
        // other LAN machines, as the paper's connection definition notes.
        let tb = Testbed::paper();
        let run = tb.run(|ctx| {
            ctx.compute_time(SimTime::from_secs(65));
        });
        let udp = run.trace.iter().filter(|r| r.proto == Proto::Udp).count();
        // Two 30 s rounds × 8 slave daemons.
        assert!(udp >= 16, "expected heartbeat rounds, saw {udp} datagrams");
    }

    #[test]
    fn without_heartbeats_is_silent_when_idle() {
        let tb = TestbedBuilder::paper().heartbeats(false).build();
        let run = tb.run(|ctx| {
            ctx.compute_time(SimTime::from_secs(65));
        });
        assert!(run.trace.is_empty());
    }

    #[test]
    fn seeds_change_mac_level_timing() {
        let a = TestbedBuilder::paper()
            .seed(1)
            .build()
            .run_kernel(KernelKind::Hist, 100)
            .unwrap();
        let b = TestbedBuilder::paper()
            .seed(1)
            .build()
            .run_kernel(KernelKind::Hist, 100)
            .unwrap();
        assert_eq!(a.trace, b.trace, "same seed must reproduce exactly");
    }

    #[test]
    fn kernel_runs_produce_traffic() {
        let run = Testbed::quiet(4).run_kernel(KernelKind::Sor, 100).unwrap();
        assert!(!run.trace.is_empty());
        assert!(run.finished_at > SimTime::ZERO);
    }

    #[test]
    fn columnar_store_of_a_kernel_run_matches_the_record_trace() {
        // The columnar engine is the analysis path the harness uses on
        // real testbed output: a store built from a run must reproduce
        // the record trace and agree with the legacy kernels on it.
        let run = Testbed::quiet(4).run_kernel(KernelKind::Sor, 100).unwrap();
        let store = fxnet_trace::TraceStore::from_records(&run.trace);
        assert_eq!(store.to_records(), run.trace);
        assert_eq!(
            store.view().packet_sizes(),
            fxnet_trace::Stats::packet_sizes(&run.trace)
        );
        assert_eq!(store.host_pairs(), fxnet_trace::host_pairs(&run.trace));
        for &((s, d), n) in &store.host_pairs() {
            assert_eq!(store.connection(s, d).len(), n);
        }
    }

    #[test]
    fn topology_testbed_runs_kernels_and_single_segment_matches_bus() {
        let rate = fxnet_sim::RATE_10M;
        let bus = TestbedBuilder::paper()
            .seed(5)
            .build()
            .run_kernel(KernelKind::Hist, 100)
            .unwrap();
        let topo = TestbedBuilder::paper()
            .seed(5)
            .topology(fxnet_topo::TopologySpec::single_segment(9, rate))
            .build()
            .run_kernel(KernelKind::Hist, 100)
            .unwrap();
        assert_eq!(bus.trace, topo.trace, "single segment must be the bus");
        // A trunked fabric still runs the kernel to completion and
        // produces traffic.
        let trunked = TestbedBuilder::paper()
            .seed(5)
            .topology(fxnet_topo::TopologySpec::two_switches_trunk(9, rate))
            .build()
            .run_kernel(KernelKind::Hist, 100)
            .unwrap();
        assert!(!trunked.trace.is_empty());
    }

    #[test]
    fn undersized_topology_is_a_typed_error() {
        let mut tb = TestbedBuilder::paper()
            .topology(fxnet_topo::TopologySpec::two_switches_trunk(
                9,
                fxnet_sim::RATE_10M,
            ))
            .build();
        tb.config_mut().hosts = 12; // spec only attaches 9
        let err = tb.run_kernel(KernelKind::Sor, 100).unwrap_err();
        assert!(
            matches!(err, fxnet_fx::FxnetError::InvalidConfig(_)),
            "{err:?}"
        );
    }

    #[test]
    fn invalid_testbed_surfaces_a_typed_error() {
        let mut tb = Testbed::quiet(4);
        tb.config_mut().hosts = 2; // fewer hosts than ranks
        let err = tb.run_kernel(KernelKind::Sor, 100).unwrap_err();
        assert!(
            matches!(err, fxnet_fx::FxnetError::InvalidConfig(_)),
            "{err:?}"
        );
    }
}
