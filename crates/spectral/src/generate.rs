//! Synthetic traffic generation from a Fourier bandwidth model.
//!
//! Given a [`FourierModel`] fitted to a measured kernel, emit a packet
//! trace whose windowed bandwidth follows the model — "analytic models to
//! generate similar traffic" (abstract). A planner can replay
//! 2DFFT-shaped load against a network design without running 2DFFT.

use crate::fourier::FourierModel;
use fxnet_sim::{Frame, FrameKind, FrameRecord, HostId, SimRng, SimTime};

/// Packet-level shaping for the synthesized trace.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Source/destination stamped on the generated records.
    pub src: HostId,
    pub dst: HostId,
    /// Bin used to integrate the model into byte quotas.
    pub bin: SimTime,
    /// Maximum frame size; quotas are emitted as full frames plus one
    /// remainder (mirroring MSS segmentation).
    pub max_frame: u32,
    /// Minimum frame size (protocol floor).
    pub min_frame: u32,
    /// Jitter applied to packet spacing inside a bin, as a fraction of
    /// the even spacing (0 = perfectly regular).
    pub jitter: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            src: HostId(0),
            dst: HostId(1),
            bin: SimTime::from_millis(10),
            max_frame: 1518,
            min_frame: 58,
            jitter: 0.1,
        }
    }
}

/// Generate `duration` of synthetic traffic following `model`.
///
/// Each bin's byte quota is `model.eval(t) · bin`; the quota is emitted
/// as max-size frames plus a remainder, evenly spaced with optional
/// jitter. Fractional bytes carry over between bins so long-run volume is
/// conserved.
pub fn synthesize_trace(
    model: &FourierModel,
    duration: SimTime,
    cfg: &SynthConfig,
    rng: &mut SimRng,
) -> Vec<FrameRecord> {
    let bin_s = cfg.bin.as_secs_f64();
    let nbins = (duration.as_nanos() / cfg.bin.as_nanos()) as usize;
    let mut out = Vec::new();
    let mut carry = 0.0f64;
    for b in 0..nbins {
        let t0 = b as f64 * bin_s;
        let mut budget = model.eval(t0) * bin_s + carry;
        let mut frames: Vec<u32> = Vec::new();
        while budget >= f64::from(cfg.max_frame) {
            frames.push(cfg.max_frame);
            budget -= f64::from(cfg.max_frame);
        }
        if budget >= f64::from(cfg.min_frame) {
            let sz = budget as u32;
            frames.push(sz);
            budget -= f64::from(sz);
        }
        carry = budget;
        let n = frames.len();
        for (i, sz) in frames.into_iter().enumerate() {
            let even = (i as f64 + 0.5) / n as f64;
            let jit = (rng.unit() - 0.5) * cfg.jitter / n as f64;
            let frac = (even + jit).clamp(0.0, 0.999_999);
            let t = SimTime::from_secs_f64(t0 + frac * bin_s);
            let frame = Frame::tcp(cfg.src, cfg.dst, FrameKind::Data, sz - 58, 0);
            out.push(FrameRecord {
                time: t,
                wire_len: sz,
                proto: frame.proto,
                kind: frame.kind,
                src: cfg.src,
                dst: cfg.dst,
            });
        }
    }
    out.sort_by_key(|r| r.time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_trace::{binned_bandwidth, Periodogram};

    fn model_with(mean: f64, freq: f64, amp: f64) -> FourierModel {
        FourierModel {
            mean,
            spikes: vec![fxnet_trace::Spike {
                freq,
                power: amp * amp,
                coeff_re: amp / 2.0,
                coeff_im: 0.0,
            }],
        }
    }

    #[test]
    fn volume_matches_model_mean() {
        let m = model_with(200_000.0, 2.0, 80_000.0);
        let mut rng = SimRng::new(1);
        let tr = synthesize_trace(
            &m,
            SimTime::from_secs(20),
            &SynthConfig::default(),
            &mut rng,
        );
        let bytes: u64 = tr.iter().map(|r| u64::from(r.wire_len)).sum();
        let rate = bytes as f64 / 20.0;
        assert!(
            (rate - 200_000.0).abs() < 10_000.0,
            "long-run rate {rate} B/s"
        );
    }

    #[test]
    fn spectrum_of_generated_traffic_has_model_spike() {
        let m = model_with(300_000.0, 4.0, 150_000.0);
        let mut rng = SimRng::new(7);
        let tr = synthesize_trace(
            &m,
            SimTime::from_secs(40),
            &SynthConfig::default(),
            &mut rng,
        );
        let series = binned_bandwidth(&tr, SimTime::from_millis(10));
        let p = Periodogram::compute(&series, SimTime::from_millis(10));
        let f = p.dominant_frequency(0.5).unwrap();
        assert!((f - 4.0).abs() < 0.2, "regenerated dominant {f} Hz");
    }

    #[test]
    fn quiet_model_emits_nothing() {
        let m = FourierModel {
            mean: 0.0,
            spikes: vec![],
        };
        let mut rng = SimRng::new(3);
        let tr = synthesize_trace(&m, SimTime::from_secs(5), &SynthConfig::default(), &mut rng);
        assert!(tr.is_empty());
    }

    #[test]
    fn frames_respect_size_bounds_and_order() {
        let m = model_with(500_000.0, 1.0, 400_000.0);
        let mut rng = SimRng::new(9);
        let cfg = SynthConfig::default();
        let tr = synthesize_trace(&m, SimTime::from_secs(10), &cfg, &mut rng);
        assert!(!tr.is_empty());
        for r in &tr {
            assert!(r.wire_len >= cfg.min_frame && r.wire_len <= cfg.max_frame);
        }
        assert!(tr.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let m = model_with(100_000.0, 3.0, 50_000.0);
        let gen = |seed| {
            let mut rng = SimRng::new(seed);
            synthesize_trace(&m, SimTime::from_secs(5), &SynthConfig::default(), &mut rng)
        };
        assert_eq!(gen(5), gen(5));
        assert_ne!(gen(5), gen(6));
    }
}
