//! Baseline media-style traffic sources.
//!
//! The paper's central contrast (§1, §8): QoS research of the era
//! characterized *media streams* — traffic with intrinsic frame-rate
//! periodicity, variable burst sizes, and (for aggregated VBR video)
//! self-similar scaling — whereas compiler-parallelized programs have
//! constant burst sizes and periodicity that depends on application
//! parameters and on the bandwidth the network provides. These generators
//! provide the media side of that comparison.

use fxnet_sim::{Frame, FrameKind};
use fxnet_sim::{FrameRecord, HostId, SimRng, SimTime};

fn mk_record(t: f64, size: u32, src: HostId, dst: HostId) -> FrameRecord {
    let f = Frame::tcp(src, dst, FrameKind::Data, size.saturating_sub(58), 0);
    FrameRecord {
        time: SimTime::from_secs_f64(t),
        wire_len: size,
        proto: f.proto,
        kind: f.kind,
        src,
        dst,
    }
}

/// Constant-bit-rate stream: fixed-size packets at a fixed interval (an
/// uncompressed audio/video stream).
pub fn cbr_trace(rate_bytes_per_s: f64, packet: u32, duration: SimTime) -> Vec<FrameRecord> {
    assert!(rate_bytes_per_s > 0.0 && packet > 0);
    let interval = f64::from(packet) / rate_bytes_per_s;
    let dur = duration.as_secs_f64();
    let mut out = Vec::new();
    let mut t = 0.0;
    while t < dur {
        out.push(mk_record(t, packet, HostId(0), HostId(1)));
        t += interval;
    }
    out
}

/// On/off VBR stream: exponentially distributed on and off periods; while
/// on, packets flow at `peak_bytes_per_s` (a compressed video source with
/// scene-dependent rate).
pub fn onoff_vbr_trace(
    peak_bytes_per_s: f64,
    mean_on_s: f64,
    mean_off_s: f64,
    packet: u32,
    duration: SimTime,
    rng: &mut SimRng,
) -> Vec<FrameRecord> {
    let dur = duration.as_secs_f64();
    let interval = f64::from(packet) / peak_bytes_per_s;
    let mut out = Vec::new();
    let mut t = 0.0;
    let mut on = true;
    while t < dur {
        let period = if on {
            rng.exponential(mean_on_s)
        } else {
            rng.exponential(mean_off_s)
        };
        if on {
            let mut pt = t;
            while pt < (t + period).min(dur) {
                out.push(mk_record(pt, packet, HostId(0), HostId(1)));
                pt += interval;
            }
        }
        t += period;
        on = !on;
    }
    out
}

/// Self-similar aggregate: `sources` independent Pareto on/off streams
/// (Garrett & Willinger's construction for VBR video). Heavy-tailed on
/// periods with shape `alpha ∈ (1, 2)` produce long-range dependence with
/// Hurst exponent `H = (3 − α) / 2`.
pub fn self_similar_trace(
    sources: usize,
    per_source_bytes_per_s: f64,
    alpha: f64,
    mean_period_s: f64,
    packet: u32,
    duration: SimTime,
    rng: &mut SimRng,
) -> Vec<FrameRecord> {
    assert!(
        alpha > 1.0 && alpha < 2.0,
        "need infinite-variance on times"
    );
    let dur = duration.as_secs_f64();
    let interval = f64::from(packet) / per_source_bytes_per_s;
    // Pareto scale so the mean period is mean_period_s: mean = xm·α/(α−1).
    let xm = mean_period_s * (alpha - 1.0) / alpha;
    let mut out = Vec::new();
    for s in 0..sources {
        let src = HostId(s as u32 % 8);
        let mut t = rng.unit() * mean_period_s; // stagger the sources
        let mut on = s % 2 == 0;
        while t < dur {
            let period = rng.pareto(xm, alpha);
            if on {
                let mut pt = t;
                while pt < (t + period).min(dur) {
                    out.push(mk_record(pt, packet, src, HostId(8)));
                    pt += interval;
                }
            }
            t += period;
            on = !on;
        }
    }
    out.sort_by_key(|r| r.time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_trace::{binned_bandwidth, Periodogram};

    const BIN: SimTime = SimTime(10_000_000);

    #[test]
    fn cbr_rate_is_exact() {
        let tr = cbr_trace(100_000.0, 1000, SimTime::from_secs(10));
        let bytes: u64 = tr.iter().map(|r| u64::from(r.wire_len)).sum();
        assert!((bytes as f64 / 10.0 - 100_000.0).abs() < 2000.0);
        // Perfectly regular interarrivals.
        let s = fxnet_trace::Stats::interarrivals_ms(&tr).unwrap();
        assert!(s.sd < 1e-6, "CBR jitter {}", s.sd);
    }

    #[test]
    fn vbr_is_burstier_than_cbr() {
        let mut rng = SimRng::new(11);
        let vbr = onoff_vbr_trace(400_000.0, 0.3, 0.7, 1000, SimTime::from_secs(30), &mut rng);
        let cbr = cbr_trace(120_000.0, 1000, SimTime::from_secs(30));
        let b_vbr = fxnet_trace::Stats::interarrivals_ms(&vbr)
            .unwrap()
            .burstiness();
        let b_cbr = fxnet_trace::Stats::interarrivals_ms(&cbr)
            .unwrap()
            .burstiness();
        assert!(b_vbr > 5.0 * b_cbr, "vbr {b_vbr} vs cbr {b_cbr}");
    }

    #[test]
    fn media_spectra_are_flatter_than_periodic_bursts() {
        // The paper's claim, inverted into a test: a periodic parallel-
        // style burst train has a far less flat (spikier) spectrum than
        // on/off media traffic of the same average rate.
        let mut rng = SimRng::new(5);
        let vbr = onoff_vbr_trace(500_000.0, 0.4, 0.6, 1000, SimTime::from_secs(60), &mut rng);
        let vbr_series = binned_bandwidth(&vbr, BIN);
        let periodic: Vec<f64> = (0..vbr_series.len())
            .map(|i| if (i / 20) % 5 == 0 { 1_000_000.0 } else { 0.0 })
            .collect();
        let f_vbr = Periodogram::compute(&vbr_series, BIN).flatness();
        let f_par = Periodogram::compute(&periodic, BIN).flatness();
        assert!(f_vbr > 3.0 * f_par, "vbr {f_vbr} vs parallel {f_par}");
    }

    #[test]
    fn self_similar_produces_traffic_at_expected_volume() {
        let mut rng = SimRng::new(23);
        let tr = self_similar_trace(
            16,
            50_000.0,
            1.5,
            0.5,
            500,
            SimTime::from_secs(30),
            &mut rng,
        );
        assert!(!tr.is_empty());
        // ~half the sources on at any time → ~16·50k/2 = 400 KB/s.
        let bytes: u64 = tr.iter().map(|r| u64::from(r.wire_len)).sum();
        let rate = bytes as f64 / 30.0;
        assert!(rate > 100_000.0 && rate < 800_000.0, "rate {rate}");
    }

    #[test]
    fn generators_are_deterministic() {
        let run = |seed| {
            let mut rng = SimRng::new(seed);
            onoff_vbr_trace(1e5, 0.5, 0.5, 800, SimTime::from_secs(5), &mut rng)
        };
        assert_eq!(run(1), run(1));
    }
}
