//! # fxnet-spectral
//!
//! The paper's characterization contribution (§7.2): because an Fx
//! program's communication phases are synchronized, its connections act
//! in phase and the power spectrum of its instantaneous average bandwidth
//! fully characterizes its demand. The spectrum of a periodic signal is a
//! Fourier series,
//!
//! ```text
//! X(ω) = Σ 2π a_k δ(ω − k ω₀)        x(t) = Σ a_k e^{j k ω₀ t}
//! ```
//!
//! and because the measured spectra are sparse and "spiky", the expansion
//! can be truncated to the dominant spikes, giving a *simple analytic
//! model* that approximates — and can regenerate — the bandwidth signal.
//!
//! This crate provides:
//!
//! * [`FourierModel`] — a truncated Fourier-series bandwidth model built
//!   from a [`fxnet_trace::Periodogram`], with evaluation and
//!   reconstruction-error measurement (convergence in the number of
//!   retained spikes is property-tested).
//! * [`generate`] — synthetic packet-trace generation from a model, so a
//!   network planner can replay "2DFFT-like" load without the program.
//! * [`media`] — the baseline traffic classes the paper contrasts
//!   against: constant-bit-rate, on/off VBR, and self-similar traffic
//!   (aggregated heavy-tailed on/off sources à la Garrett & Willinger),
//!   plus a Hurst-exponent estimator. Parallel-program traffic differs
//!   from all of them: no frame-rate periodicity, bandwidth-dependent
//!   period, spiky rather than flat or power-law spectra.

//! ```
//! use fxnet_sim::SimTime;
//! use fxnet_spectral::FourierModel;
//! use fxnet_trace::Periodogram;
//!
//! // 1 Hz rectangular bandwidth signal, 10 ms samples.
//! let series: Vec<f64> = (0..4096)
//!     .map(|i| if (i / 20) % 5 == 0 { 1_000_000.0 } else { 0.0 })
//!     .collect();
//! let spec = Periodogram::compute(&series, SimTime::from_millis(10));
//! let m1 = FourierModel::from_periodogram(&spec, 1, 0.1);
//! let m16 = FourierModel::from_periodogram(&spec, 16, 0.1);
//! let (e1, e16) = (
//!     m1.reconstruction_error(&series, SimTime::from_millis(10)),
//!     m16.reconstruction_error(&series, SimTime::from_millis(10)),
//! );
//! assert!(e16 < e1); // more spikes, better reconstruction (§7.2)
//! ```

pub mod fourier;
pub mod generate;
pub mod hurst;
pub mod media;
pub mod streamdft;

pub use fourier::FourierModel;
pub use generate::synthesize_trace;
pub use hurst::hurst_aggregated_variance;
pub use media::{cbr_trace, onoff_vbr_trace, self_similar_trace};
pub use streamdft::{goertzel_power, harmonic_powers, padded_bin, SlidingDft};
