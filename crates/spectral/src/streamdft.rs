//! Streaming single-bin DFTs: Goertzel evaluation of periodogram bins
//! and a sliding DFT for live spectral tracking.
//!
//! The batch [`fxnet_trace::Periodogram`] needs the whole binned series
//! and O(n log n) work. A live observer tracks only the few bins the QoS
//! contract cares about (the admitted burst fundamental and harmonics),
//! so two cheaper forms suffice:
//!
//! * [`goertzel_power`] — the power of **one** periodogram bin from one
//!   O(n) pass, *bit-compatible in definition* with `Periodogram::compute`
//!   (mean removed, series zero-padded to the next power of two, power
//!   left unscaled). Because the padding samples are zero they contribute
//!   nothing to the bin sum, so only the real samples are visited. This
//!   is the reconciliation path: at end of run the watcher re-derives its
//!   tracked powers this way and the property tests hold them against the
//!   FFT within 1e-9.
//! * [`SlidingDft`] — O(K) per sample over a fixed power-of-two window,
//!   for the *live* per-window gauge. For every non-DC bin a constant
//!   offset sums to zero over a full window (the twiddles are roots of
//!   unity), so no running mean subtraction is needed once warm.

use fxnet_sim::SimTime;
use std::collections::VecDeque;

/// The padded-FFT bin index whose center frequency is nearest `freq_hz`,
/// for a series of `n_samples` samples every `dt` — the indexing of
/// `Periodogram::compute` on the same series. Clamped to Nyquist.
pub fn padded_bin(freq_hz: f64, n_samples: usize, dt: SimTime) -> usize {
    assert!(n_samples > 0);
    let n = n_samples.next_power_of_two();
    let df = 1.0 / (n as f64 * dt.as_secs_f64());
    let k = (freq_hz / df).round().max(0.0) as usize;
    k.min(n / 2)
}

/// Power of periodogram bin `bin` of `series`, by Goertzel's recurrence
/// instead of an FFT, under exactly the batch normalization: the mean is
/// removed, the bin angle is `2π·bin/n` with `n` the next power of two
/// ≥ `series.len()`, and the power is the unscaled `|X_k|²`. Agrees with
/// `Periodogram::compute(series, dt).power[bin]` to rounding error.
pub fn goertzel_power(series: &[f64], bin: usize) -> f64 {
    assert!(!series.is_empty(), "empty series");
    let n = series.len().next_power_of_two();
    assert!(bin <= n / 2, "bin beyond Nyquist");
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let omega = 2.0 * std::f64::consts::PI * bin as f64 / n as f64;
    let coeff = 2.0 * omega.cos();
    let (mut s1, mut s2) = (0.0f64, 0.0f64);
    // The zero-padding samples satisfy x = 0 and extend the recurrence by
    // a pure rotation, which leaves |X_k| unchanged — so they are skipped.
    for &x in series {
        let s0 = (x - mean) + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    s1 * s1 + s2 * s2 - coeff * s1 * s2
}

/// Goertzel powers at the harmonics of a base frequency: for each
/// multiplier `h` in `harmonics`, the periodogram bin nearest
/// `h · base_hz` is evaluated by [`goertzel_power`], returning
/// `(frequency_hz, power)` pairs. This is the contract-harmonic probe
/// the streaming scan runs over its binned bandwidth series — three
/// O(n) passes instead of an O(n log n) FFT over millions of bins.
/// Empty series yield an empty vector.
pub fn harmonic_powers(
    series: &[f64],
    dt: SimTime,
    base_hz: f64,
    harmonics: &[u32],
) -> Vec<(f64, f64)> {
    if series.is_empty() {
        return Vec::new();
    }
    let n = series.len().next_power_of_two();
    let df = 1.0 / (n as f64 * dt.as_secs_f64());
    harmonics
        .iter()
        .map(|&h| {
            let bin = padded_bin(f64::from(h) * base_hz, series.len(), dt);
            (bin as f64 * df, goertzel_power(series, bin))
        })
        .collect()
}

/// A sliding DFT over the last `window` samples of a real-valued stream,
/// maintained at a fixed set of tracked bins in O(K) per sample.
///
/// Until `window` samples have arrived the missing history counts as
/// zero. Bin `k` corresponds to frequency `k / (window · dt)`; powers are
/// the unscaled `|X_k|²` of the length-`window` DFT of the current
/// window contents (no mean removal — irrelevant for `k ≠ 0` once the
/// window is full).
#[derive(Debug, Clone)]
pub struct SlidingDft {
    window: usize,
    bins: Vec<usize>,
    /// Running `X_k` per tracked bin, as (re, im).
    x: Vec<(f64, f64)>,
    /// `e^{+2πi k / window}` per tracked bin.
    twiddle: Vec<(f64, f64)>,
    ring: VecDeque<f64>,
    seen: u64,
}

impl SlidingDft {
    /// Track `bins` over a `window`-sample history. `window` must be a
    /// power of two and every bin at most Nyquist.
    pub fn new(window: usize, bins: &[usize]) -> SlidingDft {
        assert!(window.is_power_of_two(), "window must be a power of two");
        for &k in bins {
            assert!(k <= window / 2, "bin {k} beyond Nyquist of {window}");
        }
        let twiddle = bins
            .iter()
            .map(|&k| {
                let a = 2.0 * std::f64::consts::PI * k as f64 / window as f64;
                (a.cos(), a.sin())
            })
            .collect();
        SlidingDft {
            window,
            bins: bins.to_vec(),
            x: vec![(0.0, 0.0); bins.len()],
            twiddle,
            ring: VecDeque::with_capacity(window),
            seen: 0,
        }
    }

    /// Slide the window one sample forward.
    pub fn push(&mut self, sample: f64) {
        let old = if self.ring.len() == self.window {
            self.ring.pop_front().expect("full ring")
        } else {
            0.0
        };
        self.ring.push_back(sample);
        self.seen += 1;
        let delta = sample - old;
        for (x, &(tr, ti)) in self.x.iter_mut().zip(&self.twiddle) {
            // X_k ← (X_k + x_new − x_old) · e^{+2πik/M}
            let (re, im) = (x.0 + delta, x.1);
            *x = (re * tr - im * ti, re * ti + im * tr);
        }
    }

    /// The tracked bin indices.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// Unscaled `|X_k|²` of tracked bin `i` (index into [`Self::bins`]).
    pub fn power(&self, i: usize) -> f64 {
        let (re, im) = self.x[i];
        re * re + im * im
    }

    /// Frequency in Hz of tracked bin `i`, given the sample spacing.
    pub fn freq(&self, i: usize, dt: SimTime) -> f64 {
        self.bins[i] as f64 / (self.window as f64 * dt.as_secs_f64())
    }

    /// Samples pushed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Whether a full window of real samples has arrived.
    pub fn warm(&self) -> bool {
        self.ring.len() == self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_trace::Periodogram;
    use proptest::prelude::*;

    const DT: SimTime = SimTime(10_000_000); // the paper's 10 ms bins

    fn rel_err(a: f64, b: f64) -> f64 {
        (a - b).abs() / a.abs().max(b.abs()).max(1e-30)
    }

    #[test]
    fn goertzel_matches_fft_on_a_square_wave() {
        // 1 Hz rectangular bandwidth signal, 10 ms samples, non-power-of-
        // two length so the padding path is exercised.
        let series: Vec<f64> = (0..3000)
            .map(|i| if (i / 20) % 5 == 0 { 1_000_000.0 } else { 0.0 })
            .collect();
        let spec = Periodogram::compute(&series, DT);
        for bin in [0usize, 1, 7, 41, 500, spec.power.len() - 1] {
            let g = goertzel_power(&series, bin);
            assert!(
                rel_err(g, spec.power[bin]) < 1e-9 || (g.abs() < 1e-3 && spec.power[bin] < 1e-3),
                "bin {bin}: goertzel {g:e} vs fft {:e}",
                spec.power[bin]
            );
        }
    }

    #[test]
    fn padded_bin_round_trips_frequencies() {
        let n = 3000usize; // pads to 4096
        let spec_df = 1.0 / (4096.0 * DT.as_secs_f64());
        for k in [1usize, 10, 100, 2048] {
            assert_eq!(padded_bin(k as f64 * spec_df, n, DT), k);
        }
        // Beyond Nyquist clamps.
        assert_eq!(padded_bin(1e9, n, DT), 2048);
    }

    #[test]
    fn sliding_dft_locks_onto_a_sinusoid() {
        // Bin 8 of a 256-window: 8 cycles per window.
        let m = 256usize;
        let k = 8usize;
        let mut dft = SlidingDft::new(m, &[k, k / 2]);
        let amp = 5000.0;
        for i in 0..(4 * m) {
            let phase = 2.0 * std::f64::consts::PI * k as f64 * i as f64 / m as f64;
            dft.push(amp * phase.cos());
        }
        assert!(dft.warm());
        // |X_k| of a matched full-scale cosine is amp·M/2.
        let expect = (amp * m as f64 / 2.0).powi(2);
        assert!(rel_err(dft.power(0), expect) < 1e-6, "{}", dft.power(0));
        // The mismatched bin sees (near) zero power.
        assert!(dft.power(1) < expect * 1e-12);
        assert!((dft.freq(0, DT) - k as f64 / (m as f64 * 0.01)).abs() < 1e-12);
    }

    #[test]
    fn sliding_dft_ignores_dc_offset_when_warm() {
        let m = 128usize;
        let mut a = SlidingDft::new(m, &[3]);
        let mut b = SlidingDft::new(m, &[3]);
        for i in 0..(3 * m) {
            let s = ((i % 7) as f64) * 100.0;
            a.push(s);
            b.push(s + 123_456.0);
        }
        assert!(rel_err(a.power(0), b.power(0)) < 1e-6);
    }

    #[test]
    fn harmonic_powers_probe_the_fundamental_ladder() {
        // 1 Hz square wave again: strong odd harmonics, bin-exact
        // against direct goertzel_power at the mapped bins.
        let series: Vec<f64> = (0..3000)
            .map(|i| if (i / 20) % 5 == 0 { 1_000_000.0 } else { 0.0 })
            .collect();
        let hp = harmonic_powers(&series, DT, 1.0, &[1, 2, 3, 4]);
        assert_eq!(hp.len(), 4);
        let df = 1.0 / (4096.0 * DT.as_secs_f64());
        for (h, &(freq, power)) in (1u32..).zip(&hp) {
            let bin = padded_bin(f64::from(h), series.len(), DT);
            assert_eq!(freq.to_bits(), (bin as f64 * df).to_bits());
            assert_eq!(power.to_bits(), goertzel_power(&series, bin).to_bits());
        }
        // The fundamental dominates its even neighbour.
        assert!(hp[0].1 > hp[1].1);
        assert!(harmonic_powers(&[], DT, 1.0, &[1]).is_empty());
    }

    proptest! {
        /// Goertzel agrees with the FFT periodogram within 1e-9 relative
        /// on arbitrary series at arbitrary bins.
        #[test]
        fn goertzel_matches_fft(
            series in prop::collection::vec(0.0f64..2_000_000.0, 2..600),
            bin_sel in 0usize..1000,
        ) {
            let spec = Periodogram::compute(&series, DT);
            let bin = bin_sel % spec.power.len();
            let g = goertzel_power(&series, bin);
            let f = spec.power[bin];
            // Tiny absolute powers (cancellation to ~0) are compared
            // against the series energy scale instead.
            let scale: f64 = series.iter().map(|x| x * x).sum::<f64>().max(1.0);
            prop_assert!(
                rel_err(g, f) < 1e-9 || (g - f).abs() < 1e-9 * scale,
                "bin {}: goertzel {:e} vs fft {:e}", bin, g, f
            );
        }
    }
}
