//! Truncated Fourier-series bandwidth models (Equations 1–2 of §7.2).

use fxnet_sim::SimTime;
use fxnet_trace::{Periodogram, Spike};
use serde::{Deserialize, Serialize};

/// An analytic bandwidth model: the signal mean plus a truncated Fourier
/// series over the dominant spectral spikes.
///
/// For a real signal the coefficients come in conjugate pairs, so each
/// retained positive-frequency spike `a_k` contributes
/// `2·|a_k|·cos(2π f_k t + φ_k)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FourierModel {
    /// The DC term (average bandwidth, bytes/s).
    pub mean: f64,
    /// Retained spikes, strongest first.
    pub spikes: Vec<Spike>,
}

impl FourierModel {
    /// Build a model from a periodogram by keeping the `k` strongest
    /// spikes separated by at least `min_sep_hz`.
    pub fn from_periodogram(p: &Periodogram, k: usize, min_sep_hz: f64) -> FourierModel {
        FourierModel {
            mean: p.mean,
            spikes: p.top_spikes(k, min_sep_hz),
        }
    }

    /// Evaluate the modelled bandwidth at time `t` seconds. Clamped at
    /// zero: bandwidth cannot be negative, truncation ringing can be.
    pub fn eval(&self, t: f64) -> f64 {
        let mut x = self.mean;
        for s in &self.spikes {
            let w = 2.0 * std::f64::consts::PI * s.freq * t;
            // 2·Re(a_k e^{jωt}) = 2(Re cos − Im sin).
            x += 2.0 * (s.coeff_re * w.cos() - s.coeff_im * w.sin());
        }
        x.max(0.0)
    }

    /// Sample the model on `n` points spaced `dt` apart.
    pub fn sample(&self, n: usize, dt: SimTime) -> Vec<f64> {
        let dt_s = dt.as_secs_f64();
        (0..n).map(|i| self.eval(i as f64 * dt_s)).collect()
    }

    /// Normalized RMS reconstruction error against the original binned
    /// series the periodogram came from (0 = perfect).
    pub fn reconstruction_error(&self, series: &[f64], dt: SimTime) -> f64 {
        assert!(!series.is_empty());
        let dt_s = dt.as_secs_f64();
        let mut se = 0.0;
        let mut ref_energy = 0.0;
        for (i, &v) in series.iter().enumerate() {
            let m = self.eval(i as f64 * dt_s);
            se += (v - m) * (v - m);
            ref_energy += v * v;
        }
        if ref_energy == 0.0 {
            return if se == 0.0 { 0.0 } else { f64::INFINITY };
        }
        (se / ref_energy).sqrt()
    }

    /// Fraction of the periodogram's total AC power captured by the
    /// retained spikes (a cheap convergence indicator).
    pub fn captured_power_fraction(&self, p: &Periodogram) -> f64 {
        let total = p.total_power();
        if total == 0.0 {
            return 1.0;
        }
        let kept: f64 = self.spikes.iter().map(|s| s.power).sum();
        (kept / total).min(1.0)
    }

    /// Mean modelled bandwidth over one fundamental period (equals the DC
    /// term up to clamping effects).
    pub fn fundamental(&self) -> Option<f64> {
        self.spikes
            .iter()
            .map(|s| s.freq)
            .filter(|&f| f > 0.0)
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const DT: SimTime = SimTime(10_000_000); // 10 ms

    fn burst_train(period_s: f64, duty: f64, level: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let phase = (i as f64 * 0.01 / period_s) % 1.0;
                if phase < duty {
                    level
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn pure_tone_model_is_nearly_exact() {
        // Use a frequency landing exactly on an FFT bin (k=205 of 4096 at
        // 100 Hz sampling ≈ 5.005 Hz) so there is no spectral leakage.
        let f0 = 100.0 * 205.0 / 4096.0;
        let s: Vec<f64> = (0..4096)
            .map(|i| 500.0 + 200.0 * (2.0 * std::f64::consts::PI * f0 * i as f64 * 0.01).cos())
            .collect();
        let p = Periodogram::compute(&s, DT);
        let m = FourierModel::from_periodogram(&p, 1, 0.5);
        let err = m.reconstruction_error(&s, DT);
        assert!(err < 0.02, "tone reconstruction error {err}");
        assert!((m.eval(0.0) - 700.0).abs() < 20.0);
    }

    #[test]
    fn more_spikes_reduce_burst_train_error() {
        let s = burst_train(0.5, 0.2, 1_000_000.0, 8192);
        let p = Periodogram::compute(&s, DT);
        let errs: Vec<f64> = [1, 2, 4, 8, 16, 32]
            .iter()
            .map(|&k| FourierModel::from_periodogram(&p, k, 0.1).reconstruction_error(&s, DT))
            .collect();
        for w in errs.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "error must be non-increasing in k: {errs:?}"
            );
        }
        assert!(errs.last().unwrap() < &0.5, "{errs:?}");
    }

    #[test]
    fn fundamental_is_lowest_retained_frequency() {
        let s = burst_train(0.5, 0.2, 100.0, 8192);
        let p = Periodogram::compute(&s, DT);
        let m = FourierModel::from_periodogram(&p, 8, 0.2);
        let f0 = m.fundamental().unwrap();
        assert!((f0 - 2.0).abs() < 0.1, "fundamental {f0} Hz");
    }

    #[test]
    fn eval_is_clamped_nonnegative() {
        let s = burst_train(1.0, 0.05, 100.0, 4096);
        let p = Periodogram::compute(&s, DT);
        let m = FourierModel::from_periodogram(&p, 3, 0.1);
        for i in 0..1000 {
            assert!(m.eval(i as f64 * 0.013) >= 0.0);
        }
    }

    #[test]
    fn captured_power_increases_with_k() {
        let s = burst_train(0.5, 0.2, 100.0, 8192);
        let p = Periodogram::compute(&s, DT);
        let f1 = FourierModel::from_periodogram(&p, 1, 0.1).captured_power_fraction(&p);
        let f8 = FourierModel::from_periodogram(&p, 8, 0.1).captured_power_fraction(&p);
        assert!(f8 >= f1);
        assert!(f8 <= 1.0 && f1 > 0.0);
    }

    #[test]
    fn zero_signal_handled() {
        let s = vec![0.0; 256];
        let p = Periodogram::compute(&s, DT);
        let m = FourierModel::from_periodogram(&p, 4, 0.1);
        assert_eq!(m.reconstruction_error(&s, DT), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn reconstruction_error_nonincreasing_in_k(
            period_ds in 2u32..20,    // 0.2 .. 2.0 s
            duty_pct in 5u32..50,
            seedish in 0u32..8,
        ) {
            let period = f64::from(period_ds) * 0.1;
            let duty = f64::from(duty_pct) / 100.0;
            let level = 1000.0 + f64::from(seedish) * 300.0;
            let s = burst_train(period, duty, level, 4096);
            let p = Periodogram::compute(&s, DT);
            let mut last = f64::INFINITY;
            for k in [1usize, 4, 16, 64] {
                let e = FourierModel::from_periodogram(&p, k, 0.05)
                    .reconstruction_error(&s, DT);
                prop_assert!(e <= last + 1e-9, "k={k}: {e} > {last}");
                last = e;
            }
        }

        #[test]
        fn sample_matches_eval(n in 1usize..64) {
            let s = burst_train(0.5, 0.3, 50.0, 1024);
            let p = Periodogram::compute(&s, DT);
            let m = FourierModel::from_periodogram(&p, 4, 0.1);
            let samples = m.sample(n, DT);
            for (i, v) in samples.iter().enumerate() {
                prop_assert_eq!(*v, m.eval(i as f64 * 0.01));
            }
        }
    }
}
