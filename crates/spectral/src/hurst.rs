//! Hurst-exponent estimation by the aggregated-variance method.
//!
//! Used to verify that the self-similar baseline source really exhibits
//! long-range dependence (H > 0.5) while Poisson-like and periodic
//! traffic does not — part of the "parallel traffic is not media
//! traffic" comparison.

/// Estimate the Hurst exponent of a stationary series by the
/// aggregated-variance method: for block sizes `m`, the variance of the
/// block means scales as `m^{2H−2}`; H is recovered from the slope of a
/// least-squares fit in log–log space.
///
/// Returns `None` for series too short to aggregate (< 64 samples) or
/// with zero variance.
pub fn hurst_aggregated_variance(series: &[f64]) -> Option<f64> {
    if series.len() < 64 {
        return None;
    }
    let mut points = Vec::new();
    let mut m = 1usize;
    while series.len() / m >= 8 {
        let means: Vec<f64> = series
            .chunks_exact(m)
            .map(|c| c.iter().sum::<f64>() / m as f64)
            .collect();
        let n = means.len() as f64;
        let mu = means.iter().sum::<f64>() / n;
        let var = means.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / n;
        if var > 0.0 {
            points.push(((m as f64).ln(), var.ln()));
        }
        m *= 2;
    }
    if points.len() < 3 {
        return None;
    }
    // Least-squares slope.
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some((slope / 2.0 + 1.0).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::self_similar_trace;
    use fxnet_sim::{SimRng, SimTime};
    use fxnet_trace::binned_bandwidth;

    #[test]
    fn iid_noise_has_h_near_half() {
        // Deterministic scrambled noise ≈ i.i.d.
        let series: Vec<f64> = (0..16384u64)
            .map(|i| {
                let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                ((z ^ (z >> 27)) % 1000) as f64
            })
            .collect();
        let h = hurst_aggregated_variance(&series).unwrap();
        assert!((h - 0.5).abs() < 0.12, "iid H = {h}");
    }

    #[test]
    fn self_similar_traffic_has_high_h() {
        let mut rng = SimRng::new(77);
        let tr = self_similar_trace(
            32,
            20_000.0,
            1.4,
            1.0,
            500,
            SimTime::from_secs(240),
            &mut rng,
        );
        let series = binned_bandwidth(&tr, SimTime::from_millis(100));
        let h = hurst_aggregated_variance(&series).unwrap();
        assert!(h > 0.6, "self-similar H = {h}");
    }

    #[test]
    fn short_series_rejected() {
        assert!(hurst_aggregated_variance(&[1.0; 10]).is_none());
    }

    #[test]
    fn constant_series_rejected() {
        assert!(hurst_aggregated_variance(&[5.0; 1000]).is_none());
    }

    #[test]
    fn trend_has_h_near_one() {
        let series: Vec<f64> = (0..4096).map(|i| i as f64).collect();
        let h = hurst_aggregated_variance(&series).unwrap();
        assert!(h > 0.9, "trend H = {h}");
    }
}
