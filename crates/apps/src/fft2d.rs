//! 2DFFT — the data-parallel 2-D FFT, the *all-to-all* pattern kernel.
//!
//! Rows of the N×N single-precision complex matrix (Fortran `COMPLEX`,
//! 8 bytes) are block-distributed. Each iteration runs local 1-D FFTs
//! over the owned rows, redistributes so columns are block-distributed
//! (the transpose — an all-to-all where every rank sends every other an
//! O((N/P)²) block), then runs local 1-D FFTs over the owned columns.
//! The all-to-all uses the shift schedule: in round r, rank i sends to
//! (i+r) mod P and receives from (i−r) mod P, tightly synchronizing all
//! processors — which is why 2DFFT's *aggregate* spectrum is the clean
//! one (paper §6.1).

use crate::checksum;
use fxnet_fx::{BlockDist, RankCtx};
use fxnet_numerics::fft::{fft, fft_flops};
use fxnet_numerics::Complex;
use fxnet_pvm::MessageBuilder;

/// 2DFFT kernel parameters.
#[derive(Debug, Clone)]
pub struct FftParams {
    /// Matrix dimension N (must be a power of two and divisible by P).
    pub n: usize,
    /// Outer iterations.
    pub iters: usize,
}

impl FftParams {
    /// The measured configuration: N=512, 100 iterations.
    pub fn paper() -> FftParams {
        FftParams { n: 512, iters: 100 }
    }

    /// A CI-sized configuration.
    pub fn tiny() -> FftParams {
        FftParams { n: 16, iters: 2 }
    }
}

/// Deterministic initial local block: rows `lo..hi`, interleaved re/im.
pub fn initial_block(n: usize, lo: usize, hi: usize) -> Vec<f32> {
    let mut v = Vec::with_capacity((hi - lo) * n * 2);
    for r in lo..hi {
        for c in 0..n {
            v.push(((r * 13 + c * 7) % 32) as f32 * 0.125);
            v.push(((r * 5 + c * 11) % 16) as f32 * 0.0625 - 0.5);
        }
    }
    v
}

/// Normalized (1/N) in-place FFT over every length-`n` row of an
/// interleaved-complex block. Normalization keeps iterated runs bounded
/// in `f32` without changing the traffic.
pub fn fft_rows(block: &mut [f32], n: usize) {
    let scale = 1.0 / n as f64;
    let mut buf = vec![Complex::ZERO; n];
    for row in block.chunks_exact_mut(2 * n) {
        for (b, pair) in buf.iter_mut().zip(row.chunks_exact(2)) {
            *b = Complex::new(f64::from(pair[0]), f64::from(pair[1]));
        }
        fft(&mut buf);
        for (b, pair) in buf.iter().zip(row.chunks_exact_mut(2)) {
            pair[0] = (b.re * scale) as f32;
            pair[1] = (b.im * scale) as f32;
        }
    }
}

/// Copy the sub-block (rows `r0..r1` of this rank's block starting at
/// global row `lo`, global columns `c0..c1`) into `out`, row-major.
fn gather_block(local: &[f32], n: usize, rows: usize, c0: usize, c1: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(rows * (c1 - c0) * 2);
    for r in 0..rows {
        let base = (r * n + c0) * 2;
        out.extend_from_slice(&local[base..base + (c1 - c0) * 2]);
    }
    out
}

/// Write a received block (global rows `r0..r1`, this rank's columns
/// `lo..hi`, row-major) into the transposed local layout.
fn scatter_transposed(
    next: &mut [f32],
    n: usize,
    r0: usize,
    r1: usize,
    vals: &[f32],
    width: usize,
) {
    let mut it = vals.chunks_exact(2);
    for r in r0..r1 {
        for c in 0..width {
            let pair = it.next().expect("block size mismatch");
            // Local row c (the global column minus this rank's lo), column r.
            let idx = (c * n + r) * 2;
            next[idx] = pair[0];
            next[idx + 1] = pair[1];
        }
    }
}

/// The per-rank SPMD program. Returns a checksum of the final block.
pub fn fft2d_rank(ctx: &mut RankCtx, p: &FftParams) -> u64 {
    let (me, np) = (ctx.rank() as usize, ctx.nprocs() as usize);
    assert_eq!(p.n % np, 0, "N must divide evenly for the transpose");
    let dist = BlockDist::new(p.n, np);
    let (lo, hi) = (dist.lo(me), dist.hi(me));
    let rows = hi - lo;
    let mut local = initial_block(p.n, lo, hi);

    for iter in 0..p.iters {
        // Stage 1: local row FFTs.
        fft_rows(&mut local, p.n);
        ctx.compute_flops(rows as u64 * fft_flops(p.n));

        // Stage 2: the distribution transpose (all-to-all, shift schedule).
        ctx.phase_begin("transpose");
        let mut next = vec![0.0f32; rows * p.n * 2];
        // Diagonal block stays local.
        let diag = gather_block(&local, p.n, rows, lo, hi);
        scatter_transposed(&mut next, p.n, lo, hi, &diag, rows);
        for r in 1..np {
            let dst = (me + r) % np;
            let src = (me + np - r) % np;
            let (dlo, dhi) = (dist.lo(dst), dist.hi(dst));
            let block = gather_block(&local, p.n, rows, dlo, dhi);
            let mut b = MessageBuilder::new((iter * np + r) as i32);
            b.pack_f32(&block);
            ctx.send(dst as u32, b.finish());

            let (slo, shi) = (dist.lo(src), dist.hi(src));
            let m = ctx.recv(src as u32);
            let vals = m.reader().f32s((shi - slo) * rows * 2);
            scatter_transposed(&mut next, p.n, slo, shi, &vals, rows);
        }
        ctx.phase_end();
        local = next;

        // Stage 3: local column FFTs (rows of the transposed layout).
        fft_rows(&mut local, p.n);
        ctx.compute_flops(rows as u64 * fft_flops(p.n));
    }

    let as_f64: Vec<f64> = local.iter().map(|&v| f64::from(v)).collect();
    checksum(&as_f64)
}

/// Sequential reference: per-rank checksums of the identical computation.
pub fn fft2d_sequential(p: &FftParams, np: usize) -> Vec<u64> {
    let n = p.n;
    let mut m = initial_block(n, 0, n);
    for _ in 0..p.iters {
        fft_rows(&mut m, n);
        // Full transpose.
        let mut t = vec![0.0f32; n * n * 2];
        for r in 0..n {
            for c in 0..n {
                t[(c * n + r) * 2] = m[(r * n + c) * 2];
                t[(c * n + r) * 2 + 1] = m[(r * n + c) * 2 + 1];
            }
        }
        m = t;
        fft_rows(&mut m, n);
    }
    let dist = BlockDist::new(n, np);
    (0..np)
        .map(|r| {
            let seg = &m[dist.lo(r) * n * 2..dist.hi(r) * n * 2];
            let as_f64: Vec<f64> = seg.iter().map(|&v| f64::from(v)).collect();
            checksum(&as_f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_fx::{run_single, RunOptions, SpmdConfig};

    fn cfg(p: u32) -> SpmdConfig {
        let mut c = SpmdConfig {
            p,
            hosts: p,
            ..SpmdConfig::default()
        };
        c.pvm.heartbeat = None;
        c
    }

    #[test]
    fn distributed_matches_sequential() {
        let params = FftParams::tiny();
        let want = fft2d_sequential(&params, 4);
        let pp = params.clone();
        let res = run_single(
            cfg(4),
            move |ctx| fft2d_rank(ctx, &pp),
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(res.results, want);
    }

    #[test]
    fn two_rank_version_matches() {
        let params = FftParams { n: 8, iters: 1 };
        let want = fft2d_sequential(&params, 2);
        let pp = params.clone();
        let res = run_single(
            cfg(2),
            move |ctx| fft2d_rank(ctx, &pp),
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(res.results, want);
    }

    #[test]
    fn all_pairs_carry_traffic() {
        let params = FftParams::tiny();
        let res = run_single(
            cfg(4),
            move |ctx| fft2d_rank(ctx, &params),
            RunOptions::default(),
        )
        .unwrap();
        let mut pairs = std::collections::HashSet::new();
        for r in &res.trace {
            if r.kind == fxnet_sim::FrameKind::Data {
                pairs.insert((r.src.0, r.dst.0));
            }
        }
        assert_eq!(pairs.len(), 12, "all-to-all must use all P(P-1) pairs");
    }

    #[test]
    fn fft_rows_single_row_matches_direct_fft() {
        let n = 8;
        let mut block = initial_block(n, 3, 4);
        let mut direct: Vec<Complex> = block
            .chunks_exact(2)
            .map(|p| Complex::new(f64::from(p[0]), f64::from(p[1])))
            .collect();
        fft_rows(&mut block, n);
        fft(&mut direct);
        for (got, want) in block.chunks_exact(2).zip(&direct) {
            assert!((f64::from(got[0]) - want.re / n as f64).abs() < 1e-6);
            assert!((f64::from(got[1]) - want.im / n as f64).abs() < 1e-6);
        }
    }
}
