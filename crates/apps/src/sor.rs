//! SOR — successive overrelaxation, the *neighbor* pattern kernel.
//!
//! The N×N grid has its rows block-distributed; in every step each rank
//! (except the ends) exchanges one boundary row with each lattice
//! neighbor before sweeping its block: O(N) bytes to p−1 and p+1, and
//! O(N²/P) local work. The per-connection traffic is highly periodic
//! (paper: ≈5 Hz fundamental at N=512, P=4) while the aggregate is less
//! clean because neighbor exchange only loosely synchronizes the ranks.

use crate::checksum;
use fxnet_fx::{BlockDist, RankCtx};
use fxnet_numerics::sor::{sor_reference, sor_sweep_block};
use fxnet_pvm::MessageBuilder;

/// SOR kernel parameters.
#[derive(Debug, Clone)]
pub struct SorParams {
    /// Grid dimension N.
    pub n: usize,
    /// Outer iterations (paper: each kernel's outer loop ran 100×).
    pub steps: usize,
    /// Overrelaxation factor ω.
    pub omega: f64,
    /// Modelled memory traffic per stencil point, in bytes. The paper's
    /// measured 5.6 KB/s SOR average implies a step period of seconds,
    /// i.e. tens of microseconds per point: Fx compiles the array
    /// assignment through shifted-section temporaries, making the sweep
    /// many full-array passes of memory traffic, not one. The default is
    /// inferred from Figure 5 (≈20 array passes).
    pub bytes_per_point: u64,
}

impl SorParams {
    /// The measured configuration: N=512, 100 outer iterations.
    pub fn paper() -> SorParams {
        SorParams {
            n: 512,
            steps: 100,
            omega: 1.0,
            bytes_per_point: 1300,
        }
    }

    /// A CI-sized configuration.
    pub fn tiny() -> SorParams {
        SorParams {
            n: 32,
            steps: 6,
            omega: 1.0,
            bytes_per_point: 48,
        }
    }
}

/// Deterministic initial grid: hot top boundary, interior perturbation.
pub fn initial_row(n: usize, global_row: usize) -> Vec<f64> {
    if global_row == 0 {
        vec![100.0; n]
    } else {
        (0..n)
            .map(|j| ((global_row * 31 + j * 17) % 11) as f64 * 0.5)
            .collect()
    }
}

/// The per-rank SPMD program. Returns a checksum of the rank's final
/// block (row-major), so tests can stitch and compare with the reference.
pub fn sor_rank(ctx: &mut RankCtx, p: &SorParams) -> u64 {
    let (me, np) = (ctx.rank() as usize, ctx.nprocs() as usize);
    let dist = BlockDist::new(p.n, np);
    let (lo, hi) = (dist.lo(me), dist.hi(me));
    let mut block: Vec<Vec<f64>> = (lo..hi).map(|r| initial_row(p.n, r)).collect();

    for step in 0..p.steps {
        // Communication phase: exchange boundary rows with neighbors.
        // Sends are buffered, so send-then-receive cannot deadlock.
        let tag = step as i32;
        ctx.phase_begin("boundary_exchange");
        if me > 0 {
            let mut b = MessageBuilder::new(tag);
            b.pack_f64(&block[0]);
            ctx.send(me as u32 - 1, b.finish());
        }
        if me + 1 < np {
            let mut b = MessageBuilder::new(tag);
            b.pack_f64(block.last().expect("nonempty block"));
            ctx.send(me as u32 + 1, b.finish());
        }
        let above: Option<Vec<f64>> = if me > 0 {
            Some(ctx.recv(me as u32 - 1).reader().f64s(p.n))
        } else {
            None
        };
        let below: Option<Vec<f64>> = if me + 1 < np {
            Some(ctx.recv(me as u32 + 1).reader().f64s(p.n))
        } else {
            None
        };
        ctx.phase_end();

        // Local computation phase: one weighted-Jacobi sweep (memory-bound).
        block = sor_sweep_block(&block, above.as_deref(), below.as_deref(), p.omega);
        ctx.compute_mem((hi - lo) as u64 * p.n as u64 * p.bytes_per_point);
    }

    let flat: Vec<f64> = block.into_iter().flatten().collect();
    checksum(&flat)
}

/// Sequential reference producing per-rank block checksums for `np` ranks.
pub fn sor_sequential(p: &SorParams, np: usize) -> Vec<u64> {
    let mut grid: Vec<Vec<f64>> = (0..p.n).map(|r| initial_row(p.n, r)).collect();
    sor_reference(&mut grid, p.omega, p.steps);
    let dist = BlockDist::new(p.n, np);
    (0..np)
        .map(|r| {
            let flat: Vec<f64> = grid[dist.lo(r)..dist.hi(r)]
                .iter()
                .flatten()
                .copied()
                .collect();
            checksum(&flat)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_fx::{run_single, RunOptions, SpmdConfig};

    fn cfg(p: u32) -> SpmdConfig {
        let mut c = SpmdConfig {
            p,
            hosts: p + 1,
            ..SpmdConfig::default()
        };
        c.pvm.heartbeat = None;
        c
    }

    #[test]
    fn distributed_matches_sequential() {
        let params = SorParams::tiny();
        let want = sor_sequential(&params, 4);
        let pp = params.clone();
        let res = run_single(cfg(4), move |ctx| sor_rank(ctx, &pp), RunOptions::default()).unwrap();
        assert_eq!(res.results, want);
    }

    #[test]
    fn works_on_two_ranks() {
        let params = SorParams {
            n: 16,
            steps: 3,
            ..SorParams::tiny()
        };
        let want = sor_sequential(&params, 2);
        let pp = params.clone();
        let res = run_single(cfg(2), move |ctx| sor_rank(ctx, &pp), RunOptions::default()).unwrap();
        assert_eq!(res.results, want);
    }

    #[test]
    fn traffic_uses_only_neighbor_connections() {
        let params = SorParams::tiny();
        let res = run_single(
            cfg(4),
            move |ctx| sor_rank(ctx, &params),
            RunOptions::default(),
        )
        .unwrap();
        for r in &res.trace {
            let (a, b) = (r.src.0 as i64, r.dst.0 as i64);
            assert!(
                (a - b).abs() == 1,
                "non-neighbor frame {a}->{b} in SOR trace"
            );
        }
    }

    #[test]
    fn boundary_rows_never_change() {
        // Rank 0's first row is the hot boundary: the reference and the
        // kernel must both hold it at 100.
        let params = SorParams::tiny();
        let mut grid: Vec<Vec<f64>> = (0..params.n).map(|r| initial_row(params.n, r)).collect();
        sor_reference(&mut grid, params.omega, params.steps);
        assert!(grid[0].iter().all(|&v| v == 100.0));
    }
}
