//! T2DFFT — the pipelined, task-parallel 2-D FFT (*partition* pattern).
//!
//! Half the processors perform the row FFTs and send the result to the
//! other half, which perform the column FFTs; the communication doubles
//! as the distribution transpose. Unlike every other kernel, T2DFFT
//! avoids the message-assembly copy loop by issuing *multiple packs per
//! message* — PVM stores the message as a fragment list and writes each
//! fragment to the socket independently, which is why T2DFFT's packet
//! sizes are not trimodal (paper §4, §6.1) and its spectra are the least
//! clean.

use crate::checksum;
use crate::fft2d::fft_rows;
use fxnet_fx::{BlockDist, RankCtx};
use fxnet_numerics::fft::fft_flops;
use fxnet_pvm::MessageBuilder;

/// T2DFFT kernel parameters.
#[derive(Debug, Clone)]
pub struct T2dfftParams {
    /// Matrix dimension N.
    pub n: usize,
    /// Pipeline iterations.
    pub iters: usize,
}

impl T2dfftParams {
    /// The measured configuration.
    pub fn paper() -> T2dfftParams {
        T2dfftParams { n: 512, iters: 100 }
    }

    /// A CI-sized configuration.
    pub fn tiny() -> T2dfftParams {
        T2dfftParams { n: 16, iters: 2 }
    }
}

/// The per-rank SPMD program.
///
/// Ranks `0..P/2` are senders (row FFTs); ranks `P/2..P` are receivers
/// (column FFTs). Returns 0 for senders and the final block checksum for
/// receivers.
pub fn t2dfft_rank(ctx: &mut RankCtx, p: &T2dfftParams) -> u64 {
    let (me, np) = (ctx.rank() as usize, ctx.nprocs() as usize);
    assert!(np >= 2 && np % 2 == 0, "T2DFFT needs an even rank count");
    let h = np / 2;
    let dist = BlockDist::new(p.n, h);
    assert_eq!(p.n % h, 0);

    if me < h {
        // Sender half: row FFTs over owned rows, then ship column blocks.
        let (lo, hi) = (dist.lo(me), dist.hi(me));
        let rows = hi - lo;
        let mut acc = 0u64;
        for iter in 0..p.iters {
            let mut local = crate::fft2d::initial_block(p.n, lo, hi);
            fft_rows(&mut local, p.n);
            ctx.compute_flops(rows as u64 * fft_flops(p.n));
            // Shift schedule across the partition: round r sends to
            // receiver h + (me + r) mod h.
            ctx.phase_begin("pipeline_transpose");
            for r in 0..h {
                let dst = h + (me + r) % h;
                let (clo, chi) = (dist.lo(dst - h), dist.hi(dst - h));
                // Multiple packs per message: PVM stores each pack as a
                // fragment and sizes its fragment buffers to fit one MSS
                // (1436 B of data + 24 B header = 1460 B), so the column
                // block is packed in MSS-fitted pieces — this is what
                // makes T2DFFT's connection packets uniformly near the
                // 1518 B maximum (Figure 3's 1442 B average).
                let mut gathered = Vec::with_capacity(rows * (chi - clo) * 2);
                for row in 0..rows {
                    let base = (row * p.n + clo) * 2;
                    gathered.extend_from_slice(&local[base..base + (chi - clo) * 2]);
                }
                let mut b = MessageBuilder::new((iter * h + r) as i32).multi_pack();
                for chunk in gathered.chunks(359) {
                    b.pack_f32(chunk);
                }
                ctx.send(dst as u32, b.finish());
            }
            ctx.phase_end();
            acc = acc.wrapping_add(local.len() as u64);
        }
        acc
    } else {
        // Receiver half: assemble transposed columns, run column FFTs.
        let col_rank = me - h;
        let (lo, hi) = (dist.lo(col_rank), dist.hi(col_rank));
        let width = hi - lo; // columns owned, i.e. rows of the transposed block
        let mut final_sum = 0u64;
        for _iter in 0..p.iters {
            let mut block = vec![0.0f32; width * p.n * 2];
            ctx.phase_begin("pipeline_transpose");
            for r in 0..h {
                // Inverse of the sender schedule: in round r, sender
                // (col_rank − r) mod h targets me.
                let src = (col_rank + h - r) % h;
                let (slo, shi) = (dist.lo(src), dist.hi(src));
                let m = ctx.recv(src as u32);
                let vals = m.reader().f32s((shi - slo) * width * 2);
                let mut it = vals.chunks_exact(2);
                for row in slo..shi {
                    for c in 0..width {
                        let pair = it.next().expect("block size");
                        let idx = (c * p.n + row) * 2;
                        block[idx] = pair[0];
                        block[idx + 1] = pair[1];
                    }
                }
            }
            ctx.phase_end();
            fft_rows(&mut block, p.n);
            ctx.compute_flops(width as u64 * fft_flops(p.n));
            let as_f64: Vec<f64> = block.iter().map(|&v| f64::from(v)).collect();
            final_sum = checksum(&as_f64);
        }
        final_sum
    }
}

/// Sequential reference: the receiver-half checksums for one pipeline
/// iteration (every iteration computes the same thing).
pub fn t2dfft_sequential(p: &T2dfftParams, np: usize) -> Vec<u64> {
    let h = np / 2;
    let n = p.n;
    let mut m = crate::fft2d::initial_block(n, 0, n);
    fft_rows(&mut m, n);
    let mut t = vec![0.0f32; n * n * 2];
    for r in 0..n {
        for c in 0..n {
            t[(c * n + r) * 2] = m[(r * n + c) * 2];
            t[(c * n + r) * 2 + 1] = m[(r * n + c) * 2 + 1];
        }
    }
    fft_rows(&mut t, n);
    let dist = BlockDist::new(n, h);
    let mut out = vec![0u64; np];
    for cr in 0..h {
        let seg = &t[dist.lo(cr) * n * 2..dist.hi(cr) * n * 2];
        let as_f64: Vec<f64> = seg.iter().map(|&v| f64::from(v)).collect();
        out[h + cr] = checksum(&as_f64);
    }
    // Senders return their accumulated block length.
    for (sr, slot) in out.iter_mut().take(h).enumerate() {
        *slot = (dist.size(sr) * n * 2 * p.iters) as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_fx::{run_single, RunOptions, SpmdConfig};
    use fxnet_sim::FrameKind;

    fn cfg(p: u32) -> SpmdConfig {
        let mut c = SpmdConfig {
            p,
            hosts: p,
            ..SpmdConfig::default()
        };
        c.pvm.heartbeat = None;
        c
    }

    #[test]
    fn distributed_matches_sequential() {
        let params = T2dfftParams { n: 16, iters: 1 };
        let want = t2dfft_sequential(&params, 4);
        let pp = params.clone();
        let res = run_single(
            cfg(4),
            move |ctx| t2dfft_rank(ctx, &pp),
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(res.results, want);
    }

    #[test]
    fn repeated_iterations_stay_consistent() {
        let params = T2dfftParams::tiny();
        let want = t2dfft_sequential(&params, 4);
        let pp = params.clone();
        let res = run_single(
            cfg(4),
            move |ctx| t2dfft_rank(ctx, &pp),
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(res.results, want);
    }

    #[test]
    fn traffic_crosses_the_partition_only() {
        let params = T2dfftParams::tiny();
        let res = run_single(
            cfg(4),
            move |ctx| t2dfft_rank(ctx, &params),
            RunOptions::default(),
        )
        .unwrap();
        for r in &res.trace {
            if r.kind == FrameKind::Data {
                assert!(
                    r.src.0 < 2 && r.dst.0 >= 2,
                    "data must flow sender half → receiver half, saw {}->{}",
                    r.src,
                    r.dst
                );
            }
        }
    }

    #[test]
    fn messages_are_multi_fragment() {
        // The defining T2DFFT behaviour: many packs → many fragments →
        // a broad mix of packet sizes rather than a trimodal one.
        let params = T2dfftParams { n: 32, iters: 1 };
        let res = run_single(
            cfg(4),
            move |ctx| t2dfft_rank(ctx, &params),
            RunOptions::default(),
        )
        .unwrap();
        let data_sizes: std::collections::HashSet<u32> = res
            .trace
            .iter()
            .filter(|r| r.kind == FrameKind::Data)
            .map(|r| r.wire_len)
            .collect();
        // 16×16 complex f32 blocks = 2048 B → MSS-fitted 1436 B fragment
        // plus a remainder; a mix of sizes, none exceeding a full frame.
        assert!(data_sizes.iter().all(|&s| s <= 1518));
        assert!(
            data_sizes.len() >= 2,
            "expected a size mix, got {data_sizes:?}"
        );
    }
}
