//! # fxnet-apps
//!
//! The six Fx programs whose network traffic the paper measured (§3),
//! implemented as genuine SPMD programs over the [`fxnet_fx`] runtime:
//! every rank runs straight-line code on its block of the distributed
//! data, performs the *real* local numerics, and exchanges *real bytes*
//! through the simulated PVM/TCP/Ethernet stack. The kernels and their
//! communication patterns (the paper's Figure 2):
//!
//! | pattern   | kernel  | description                    |
//! |-----------|---------|--------------------------------|
//! | neighbor  | SOR     | 2-D successive overrelaxation  |
//! | all-to-all| 2DFFT   | 2-D data-parallel FFT          |
//! | partition | T2DFFT  | 2-D task-parallel FFT          |
//! | broadcast | SEQ     | sequential I/O                 |
//! | tree      | HIST    | 2-D image histogram            |
//!
//! plus AIRSHED, the air-quality-model skeleton (§3.2) with its
//! three-timescale phase structure (hourly preprocess, per-step
//! chemistry/transport, paired all-to-all transposes).
//!
//! Each module provides a `Params` struct with `paper()` (the measured
//! configuration, possibly with documented scaling) and `tiny()` (fast CI
//! configuration), a free function building the rank program, and a
//! sequential reference used by the tests to verify the distributed
//! results bit-for-bit or to tolerance.

pub mod airshed;
pub mod fft2d;
pub mod hist;
pub mod seq;
pub mod sor;
pub mod t2dfft;

use fxnet_fx::{run_single, FxnetResult, RunOptions, RunResult, SpmdConfig};

/// The five kernels, for harnesses that sweep over all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    Sor,
    Fft2d,
    T2dfft,
    Seq,
    Hist,
}

impl KernelKind {
    /// All five kernels in the paper's table order.
    pub const ALL: [KernelKind; 5] = [
        KernelKind::Sor,
        KernelKind::Fft2d,
        KernelKind::T2dfft,
        KernelKind::Seq,
        KernelKind::Hist,
    ];

    /// The kernel's name as the paper prints it.
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::Sor => "SOR",
            KernelKind::Fft2d => "2DFFT",
            KernelKind::T2dfft => "T2DFFT",
            KernelKind::Seq => "SEQ",
            KernelKind::Hist => "HIST",
        }
    }

    /// The communication pattern the kernel exhibits.
    pub fn pattern(&self) -> fxnet_fx::Pattern {
        match self {
            KernelKind::Sor => fxnet_fx::Pattern::Neighbor,
            KernelKind::Fft2d => fxnet_fx::Pattern::AllToAll,
            KernelKind::T2dfft => fxnet_fx::Pattern::Partition,
            KernelKind::Seq => fxnet_fx::Pattern::Broadcast { root: 0 },
            KernelKind::Hist => fxnet_fx::Pattern::TreeUp,
        }
    }

    /// Run the kernel at paper scale, scaled down by `iter_div` on the
    /// outer iteration count (1 = the full measured run).
    ///
    /// # Errors
    /// Propagates any [`fxnet_fx::FxnetError`] from the engine (invalid
    /// config, deadlock, runaway clock).
    pub fn run_paper(&self, cfg: SpmdConfig, iter_div: usize) -> FxnetResult<RunResult<u64>> {
        self.run_paper_opts(cfg, iter_div, RunOptions::default())
    }

    /// Like [`KernelKind::run_paper`], with explicit [`RunOptions`]
    /// (frame tap, telemetry, causal capture, deschedule injection).
    ///
    /// # Errors
    /// Propagates any [`fxnet_fx::FxnetError`] from the engine (invalid
    /// config, deadlock, runaway clock).
    pub fn run_paper_opts(
        &self,
        cfg: SpmdConfig,
        iter_div: usize,
        opts: RunOptions,
    ) -> FxnetResult<RunResult<u64>> {
        let d = iter_div.max(1);
        match self {
            KernelKind::Sor => {
                let mut p = sor::SorParams::paper();
                p.steps = (p.steps / d).max(1);
                run_single(cfg, move |ctx| sor::sor_rank(ctx, &p), opts)
            }
            KernelKind::Fft2d => {
                let mut p = fft2d::FftParams::paper();
                p.iters = (p.iters / d).max(1);
                run_single(cfg, move |ctx| fft2d::fft2d_rank(ctx, &p), opts)
            }
            KernelKind::T2dfft => {
                let mut p = t2dfft::T2dfftParams::paper();
                p.iters = (p.iters / d).max(1);
                run_single(cfg, move |ctx| t2dfft::t2dfft_rank(ctx, &p), opts)
            }
            KernelKind::Seq => {
                let mut p = seq::SeqParams::paper();
                p.iters = (p.iters / d).max(1);
                run_single(cfg, move |ctx| seq::seq_rank(ctx, &p), opts)
            }
            KernelKind::Hist => {
                let mut p = hist::HistParams::paper();
                p.iters = (p.iters / d).max(1);
                run_single(
                    cfg,
                    move |ctx| {
                        let h = hist::hist_rank(ctx, &p);
                        let as_f64: Vec<f64> = h.iter().map(|&v| f64::from(v)).collect();
                        checksum(&as_f64)
                    },
                    opts,
                )
            }
        }
    }
}

/// A stable checksum over a float slice, used as the rank return value so
/// integration tests can compare distributed and sequential results.
pub fn checksum(values: &[f64]) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in values {
        acc ^= v.to_bits();
        acc = acc.wrapping_mul(0x1000_0000_01b3);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_match_paper_table() {
        let names: Vec<&str> = KernelKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["SOR", "2DFFT", "T2DFFT", "SEQ", "HIST"]);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum(&[1.0, 2.0]), checksum(&[2.0, 1.0]));
        assert_eq!(checksum(&[1.0, 2.0]), checksum(&[1.0, 2.0]));
    }
}
