//! HIST — 2-D image histogram, the *tree* pattern kernel.
//!
//! The N×N input matrix has its rows distributed over the processors.
//! Each processor computes a local histogram vector, then log P tree
//! steps merge the vectors: at step i, processors whose numbers are odd
//! multiples of 2^i send their vector to the even multiples below them.
//! Processor 0 ends with the complete histogram and broadcasts it back
//! (paper §3.1).

use fxnet_fx::{BlockDist, Pattern, RankCtx};
use fxnet_numerics::hist::{local_histogram, merge_histograms};
use fxnet_pvm::MessageBuilder;

/// HIST kernel parameters.
#[derive(Debug, Clone)]
pub struct HistParams {
    /// Image dimension N.
    pub n: usize,
    /// Outer iterations.
    pub iters: usize,
    /// Histogram bins. The paper's HIST packets reach the full 1518 B
    /// frame size, so the histogram vector exceeds one MSS: 512 bins of
    /// u32 (a 9-bit-depth image histogram) gives the measured trimodal
    /// population {1518, remainder, 58}.
    pub bins: usize,
    /// Modelled scalar operations per histogrammed pixel (float → bin
    /// conversion, clamp, increment; calibrated to land the paper's 5 Hz
    /// fundamental at N=512, P=4).
    pub ops_per_point: u64,
}

impl HistParams {
    /// The measured configuration.
    pub fn paper() -> HistParams {
        HistParams {
            n: 512,
            iters: 100,
            bins: 512,
            ops_per_point: 21,
        }
    }

    /// A CI-sized configuration.
    pub fn tiny() -> HistParams {
        HistParams {
            n: 32,
            iters: 3,
            bins: 16,
            ops_per_point: 23,
        }
    }
}

/// Deterministic "pixel" value at (r, c), in `[0, 256)`.
pub fn pixel(_n: usize, r: usize, c: usize) -> f64 {
    ((r * 31 + c * 17 + (r * c) % 23) % 256) as f64
}

/// The per-rank SPMD program. Returns the final (complete) histogram —
/// every rank holds it after the broadcast.
pub fn hist_rank(ctx: &mut RankCtx, p: &HistParams) -> Vec<u32> {
    let (me, np) = (ctx.rank() as usize, ctx.nprocs() as usize);
    let dist = BlockDist::new(p.n, np);
    let values: Vec<f64> = (dist.lo(me)..dist.hi(me))
        .flat_map(|r| (0..p.n).map(move |c| pixel(p.n, r, c)))
        .collect();

    let up = Pattern::TreeUp.schedule(np as u32);
    let bcast = Pattern::Broadcast { root: 0 }.schedule(np as u32);
    let mut result = Vec::new();

    for iter in 0..p.iters {
        // Local phase: histogram the owned pixels.
        let mut h = local_histogram(&values, p.bins, 0.0, 256.0);
        ctx.compute_flops(values.len() as u64 * p.ops_per_point);

        // Tree up-sweep.
        ctx.phase_begin("tree_reduce");
        for round in &up {
            for &(src, dst) in round {
                if src as usize == me {
                    let mut b = MessageBuilder::new(iter as i32);
                    b.pack_u32(&h);
                    ctx.send(dst, b.finish());
                } else if dst as usize == me {
                    let m = ctx.recv(src);
                    let other = m.reader().u32s(p.bins);
                    merge_histograms(&mut h, &other);
                    ctx.compute_flops(p.bins as u64);
                }
            }
        }
        ctx.phase_end();

        // Broadcast the complete histogram from processor 0.
        ctx.phase_begin("result_broadcast");
        for &(src, dst) in &bcast[0] {
            if src as usize == me {
                let mut b = MessageBuilder::new(!(iter as i32));
                b.pack_u32(&h);
                ctx.send(dst, b.finish());
            } else if dst as usize == me {
                h = ctx.recv(src).reader().u32s(p.bins);
            }
        }
        ctx.phase_end();
        result = h;
    }
    result
}

/// Sequential reference histogram of the full image.
pub fn hist_sequential(p: &HistParams) -> Vec<u32> {
    let values: Vec<f64> = (0..p.n)
        .flat_map(|r| (0..p.n).map(move |c| pixel(p.n, r, c)))
        .collect();
    local_histogram(&values, p.bins, 0.0, 256.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_fx::{run_single, RunOptions, SpmdConfig};
    use fxnet_sim::FrameKind;

    fn cfg(p: u32) -> SpmdConfig {
        let mut c = SpmdConfig {
            p,
            hosts: p,
            ..SpmdConfig::default()
        };
        c.pvm.heartbeat = None;
        c
    }

    #[test]
    fn every_rank_ends_with_the_full_histogram() {
        let params = HistParams::tiny();
        let want = hist_sequential(&params);
        let pp = params.clone();
        let res = run_single(
            cfg(4),
            move |ctx| hist_rank(ctx, &pp),
            RunOptions::default(),
        )
        .unwrap();
        for r in &res.results {
            assert_eq!(r, &want);
        }
    }

    #[test]
    fn total_count_is_n_squared() {
        let params = HistParams::tiny();
        let pp = params.clone();
        let res = run_single(
            cfg(4),
            move |ctx| hist_rank(ctx, &pp),
            RunOptions::default(),
        )
        .unwrap();
        let total: u32 = res.results[0].iter().sum();
        assert_eq!(total as usize, params.n * params.n);
    }

    #[test]
    fn works_on_non_power_of_two_ranks() {
        let params = HistParams::tiny();
        let want = hist_sequential(&params);
        let pp = params.clone();
        let res = run_single(
            cfg(3),
            move |ctx| hist_rank(ctx, &pp),
            RunOptions::default(),
        )
        .unwrap();
        for r in &res.results {
            assert_eq!(r, &want);
        }
    }

    #[test]
    fn tree_message_count_per_iteration() {
        let params = HistParams {
            iters: 1,
            ..HistParams::tiny()
        };
        let res = run_single(
            cfg(4),
            move |ctx| hist_rank(ctx, &params),
            RunOptions::default(),
        )
        .unwrap();
        // Up-sweep P−1 messages + broadcast P−1 messages = 6 for P=4.
        let pvm_msgs: usize = res
            .trace
            .iter()
            .filter(|r| r.kind == FrameKind::Data)
            .count();
        // Each 16-bin histogram (64 B + 24 B header) fits one frame.
        assert_eq!(pvm_msgs, 6);
    }
}
