//! AIRSHED — the multiscale air-quality model skeleton (paper §3.2).
//!
//! The skeleton models the computation and communication of the real
//! application: `s` chemical species over `p` grid points in each of `l`
//! atmospheric layers, advanced for `h` simulation hours of `k` steps
//! each. The concentration array is distributed *by layer*; horizontal
//! transport (a direct solver applied per layer and species) is local in
//! that distribution, but chemistry/vertical transport operates per grid
//! point across all layers, so each step performs an all-to-all
//! distribution transpose before it and a reverse transpose after —
//! "k back-to-back pairs of all-to-all traffic".
//!
//! Like the skeleton the paper measured, compute *durations* are modelled
//! per phase (preprocessing, transport, chemistry) while the numerics run
//! for real at reduced scale: a genuine LU stiffness factorization per
//! layer per hour and genuine backsolves and vertical mixing on the
//! distributed concentration data, verified against a sequential
//! reference. The three phase durations produce the paper's three
//! spectral timescales (≈66 s hour, ≈5 s chemistry step, ≈200 ms
//! transport).

use crate::checksum;
use fxnet_fx::{BlockDist, RankCtx};
use fxnet_numerics::linalg::{stiffness_matrix, Lu};
use fxnet_pvm::MessageBuilder;
use fxnet_sim::SimTime;

/// AIRSHED skeleton parameters.
#[derive(Debug, Clone)]
pub struct AirshedParams {
    /// Chemical species count `s`.
    pub species: usize,
    /// Grid points per layer `p`.
    pub grid: usize,
    /// Atmospheric layers `l`.
    pub layers: usize,
    /// Simulation steps per hour `k`.
    pub steps: usize,
    /// Simulation hours `h`.
    pub hours: usize,
    /// Dimension of the real (reduced-scale) stiffness system.
    pub fe_dim: usize,
    /// Modelled duration of the hourly preprocessing phase (stiffness
    /// assembly + factorization for the full-size system).
    pub preprocess: SimTime,
    /// Modelled duration of one horizontal-transport phase.
    pub transport: SimTime,
    /// Modelled duration of one chemistry/vertical-transport phase.
    pub chem: SimTime,
}

impl AirshedParams {
    /// The measured configuration: s=35, p=1024, l=4, k=5, h=100, with
    /// phase durations landing the paper's 0.015 / 0.2 / 5 Hz peaks.
    pub fn paper() -> AirshedParams {
        AirshedParams {
            species: 35,
            grid: 1024,
            layers: 4,
            steps: 5,
            hours: 100,
            fe_dim: 96,
            preprocess: SimTime::from_secs(42),
            transport: SimTime::from_millis(200),
            chem: SimTime::from_millis(3800),
        }
    }

    /// A CI-sized configuration.
    pub fn tiny() -> AirshedParams {
        AirshedParams {
            species: 3,
            grid: 16,
            layers: 4,
            steps: 2,
            hours: 2,
            fe_dim: 8,
            preprocess: SimTime::from_millis(30),
            transport: SimTime::from_millis(2),
            chem: SimTime::from_millis(8),
        }
    }
}

/// Deterministic initial concentration at (layer, species, grid point).
pub fn initial_concentration(l: usize, sp: usize, gp: usize) -> f64 {
    1.0 + ((l * 131 + sp * 17 + gp * 7) % 100) as f64 * 0.01
}

/// Concentrations cross the wire as Fortran `REAL` (f32). Both the
/// distributed path (at pack/unpack) and the sequential reference (at
/// the same points) apply this rounding, so results stay bit-identical.
#[inline]
fn round_wire(x: f64) -> f64 {
    x as f32 as f64
}

/// Layer-layout block for layers `llo..lhi`: index
/// `((l − llo) · species + sp) · grid + gp`.
fn init_layer_block(p: &AirshedParams, llo: usize, lhi: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity((lhi - llo) * p.species * p.grid);
    for l in llo..lhi {
        for sp in 0..p.species {
            for gp in 0..p.grid {
                v.push(initial_concentration(l, sp, gp));
            }
        }
    }
    v
}

/// Factor the (reduced-scale) stiffness matrix of global layer `l`.
fn layer_stiffness(p: &AirshedParams, l: usize) -> Lu {
    Lu::factor(stiffness_matrix(p.fe_dim, 0.5 + 0.1 * l as f64)).expect("diagonally dominant")
}

/// Horizontal transport on a layer-layout block: one backsolve per
/// (layer, species), writing the solution back into the leading `fe_dim`
/// grid points.
fn transport_block(block: &mut [f64], p: &AirshedParams, llo: usize, lhi: usize, lus: &[Lu]) {
    let mut buf = vec![0.0f64; p.fe_dim];
    for l in llo..lhi {
        let lu = &lus[l - llo];
        for sp in 0..p.species {
            let base = ((l - llo) * p.species + sp) * p.grid;
            buf.copy_from_slice(&block[base..base + p.fe_dim]);
            lu.solve(&mut buf);
            block[base..base + p.fe_dim].copy_from_slice(&buf);
        }
    }
}

/// Chemistry + vertical transport on a grid-layout block (all layers and
/// species, grid points `glo..ghi`; index `(l · species + sp) · width +
/// (gp − glo)`): vertical mixing toward the column mean, then first-order
/// chemical decay. Operates per grid point, which is exactly why the
/// transpose is required.
fn chem_block(block: &mut [f64], p: &AirshedParams, width: usize) {
    for sp in 0..p.species {
        for g in 0..width {
            let mut mean = 0.0;
            for l in 0..p.layers {
                mean += block[(l * p.species + sp) * width + g];
            }
            mean /= p.layers as f64;
            for l in 0..p.layers {
                let v = &mut block[(l * p.species + sp) * width + g];
                *v += 0.05 * (mean - *v);
                *v *= 1.0 - 1e-4;
            }
        }
    }
}

/// The per-rank SPMD program. Returns the checksum of the rank's final
/// layer-layout block.
pub fn airshed_rank(ctx: &mut RankCtx, p: &AirshedParams) -> u64 {
    let (me, np) = (ctx.rank() as usize, ctx.nprocs() as usize);
    assert_eq!(p.layers % np, 0, "ranks must divide layers");
    assert_eq!(p.grid % np, 0, "ranks must divide grid points");
    let ldist = BlockDist::new(p.layers, np);
    let gdist = BlockDist::new(p.grid, np);
    let (llo, lhi) = (ldist.lo(me), ldist.hi(me));
    let (glo, ghi) = (gdist.lo(me), gdist.hi(me));
    let gw = ghi - glo;
    let my_layers = lhi - llo;

    let mut c = init_layer_block(p, llo, lhi);

    for hour in 0..p.hours {
        // Hourly preprocessing: assemble + factor each owned layer's
        // stiffness matrix (real at reduced scale; duration modelled).
        let lus: Vec<Lu> = (llo..lhi).map(|l| layer_stiffness(p, l)).collect();
        ctx.compute_time(p.preprocess);

        for step in 0..p.steps {
            let tag = (hour * p.steps + step) as i32;

            // Horizontal transport (local in the layer distribution).
            transport_block(&mut c, p, llo, lhi, &lus);
            ctx.compute_time(p.transport);

            // Forward transpose: layer layout → grid layout. Data moves
            // as f32 (Fortran REAL); the diagonal piece is rounded the
            // same way so every element sees exactly one rounding.
            ctx.phase_begin("forward_transpose");
            let mut g = vec![0.0f64; p.layers * p.species * gw];
            // Own diagonal piece.
            for l in llo..lhi {
                for sp in 0..p.species {
                    for gp in glo..ghi {
                        g[(l * p.species + sp) * gw + (gp - glo)] =
                            round_wire(c[((l - llo) * p.species + sp) * p.grid + gp]);
                    }
                }
            }
            for r in 1..np {
                let dst = (me + r) % np;
                let src = (me + np - r) % np;
                let (dglo, dghi) = (gdist.lo(dst), gdist.hi(dst));
                let mut buf: Vec<f32> = Vec::with_capacity(my_layers * p.species * (dghi - dglo));
                for l in 0..my_layers {
                    for sp in 0..p.species {
                        let base = (l * p.species + sp) * p.grid;
                        buf.extend(c[base + dglo..base + dghi].iter().map(|&v| v as f32));
                    }
                }
                let mut b = MessageBuilder::new(tag);
                b.pack_f32(&buf);
                ctx.send(dst as u32, b.finish());

                let (sllo, slhi) = (ldist.lo(src), ldist.hi(src));
                let m = ctx.recv(src as u32);
                let vals = m.reader().f32s((slhi - sllo) * p.species * gw);
                let mut it = vals.iter();
                for l in sllo..slhi {
                    for sp in 0..p.species {
                        for gp in 0..gw {
                            g[(l * p.species + sp) * gw + gp] =
                                f64::from(*it.next().expect("size"));
                        }
                    }
                }
            }
            ctx.phase_end();

            // Chemistry / vertical transport (local in grid distribution).
            chem_block(&mut g, p, gw);
            ctx.compute_time(p.chem);

            // Reverse transpose: grid layout → layer layout (f32 wire).
            ctx.phase_begin("reverse_transpose");
            for l in llo..lhi {
                for sp in 0..p.species {
                    for gp in glo..ghi {
                        c[((l - llo) * p.species + sp) * p.grid + gp] =
                            round_wire(g[(l * p.species + sp) * gw + (gp - glo)]);
                    }
                }
            }
            for r in 1..np {
                let dst = (me + r) % np;
                let src = (me + np - r) % np;
                let (dllo, dlhi) = (ldist.lo(dst), ldist.hi(dst));
                let mut buf: Vec<f32> = Vec::with_capacity((dlhi - dllo) * p.species * gw);
                for l in dllo..dlhi {
                    for sp in 0..p.species {
                        let base = (l * p.species + sp) * gw;
                        buf.extend(g[base..base + gw].iter().map(|&v| v as f32));
                    }
                }
                let mut b = MessageBuilder::new(!tag);
                b.pack_f32(&buf);
                ctx.send(dst as u32, b.finish());

                let (sglo, sghi) = (gdist.lo(src), gdist.hi(src));
                let m = ctx.recv(src as u32);
                let vals = m.reader().f32s(my_layers * p.species * (sghi - sglo));
                let mut it = vals.iter();
                for l in 0..my_layers {
                    for sp in 0..p.species {
                        for gp in sglo..sghi {
                            c[(l * p.species + sp) * p.grid + gp] =
                                f64::from(*it.next().expect("size"));
                        }
                    }
                }
            }
            ctx.phase_end();

            // Second horizontal transport of the step.
            transport_block(&mut c, p, llo, lhi, &lus);
            ctx.compute_time(p.transport);
        }
    }
    checksum(&c)
}

/// Sequential reference: per-rank layer-block checksums for `np` ranks.
pub fn airshed_sequential(p: &AirshedParams, np: usize) -> Vec<u64> {
    let mut c = init_layer_block(p, 0, p.layers);
    for _hour in 0..p.hours {
        let lus: Vec<Lu> = (0..p.layers).map(|l| layer_stiffness(p, l)).collect();
        for _step in 0..p.steps {
            transport_block(&mut c, p, 0, p.layers, &lus);
            // In the sequential reference the "transpose" is the identity
            // on data, but the f32 wire rounding still applies; chemistry
            // runs on the full grid width.
            for v in c.iter_mut() {
                *v = round_wire(*v);
            }
            chem_block(&mut c, p, p.grid);
            for v in c.iter_mut() {
                *v = round_wire(*v);
            }
            transport_block(&mut c, p, 0, p.layers, &lus);
        }
    }
    let ldist = BlockDist::new(p.layers, np);
    (0..np)
        .map(|r| {
            let seg = &c[ldist.lo(r) * p.species * p.grid..ldist.hi(r) * p.species * p.grid];
            checksum(seg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_fx::{run_single, RunOptions, SpmdConfig};
    use fxnet_sim::FrameKind;

    fn cfg(p: u32) -> SpmdConfig {
        let mut c = SpmdConfig {
            p,
            hosts: p,
            ..SpmdConfig::default()
        };
        c.pvm.heartbeat = None;
        c
    }

    #[test]
    fn distributed_matches_sequential() {
        let params = AirshedParams::tiny();
        let want = airshed_sequential(&params, 4);
        let pp = params.clone();
        let res = run_single(
            cfg(4),
            move |ctx| airshed_rank(ctx, &pp),
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(res.results, want);
    }

    #[test]
    fn two_rank_version_matches() {
        let params = AirshedParams::tiny();
        let want = airshed_sequential(&params, 2);
        let pp = params.clone();
        let res = run_single(
            cfg(2),
            move |ctx| airshed_rank(ctx, &pp),
            RunOptions::default(),
        )
        .unwrap();
        assert_eq!(res.results, want);
    }

    #[test]
    fn transpose_pairs_per_step() {
        let params = AirshedParams {
            hours: 1,
            steps: 3,
            ..AirshedParams::tiny()
        };
        let res = run_single(
            cfg(4),
            move |ctx| airshed_rank(ctx, &params),
            RunOptions::default(),
        )
        .unwrap();
        let data_msgs = res
            .trace
            .iter()
            .filter(|r| r.kind == FrameKind::Data)
            .count();
        // Each transpose moves P(P−1) messages; 2 transposes × 3 steps.
        // With the tiny size each message is a single frame.
        assert_eq!(data_msgs, 12 * 2 * 3);
    }

    #[test]
    fn chemistry_conserves_column_coupling() {
        // After mixing, layer values at one grid point move toward their
        // mean: the spread must shrink.
        let p = AirshedParams::tiny();
        let mut block = init_layer_block(&p, 0, p.layers);
        let spread = |b: &[f64]| {
            let vals: Vec<f64> = (0..p.layers).map(|l| b[(l * p.species) * p.grid]).collect();
            let mx = vals.iter().cloned().fold(f64::MIN, f64::max);
            let mn = vals.iter().cloned().fold(f64::MAX, f64::min);
            mx - mn
        };
        let before = spread(&block);
        chem_block(&mut block, &p, p.grid);
        let after = spread(&block);
        assert!(after < before || before == 0.0);
    }

    #[test]
    fn transport_only_touches_fe_prefix() {
        let p = AirshedParams::tiny();
        let mut block = init_layer_block(&p, 0, p.layers);
        let orig = block.clone();
        let lus: Vec<Lu> = (0..p.layers).map(|l| layer_stiffness(&p, l)).collect();
        transport_block(&mut block, &p, 0, p.layers, &lus);
        for l in 0..p.layers {
            for sp in 0..p.species {
                let base = (l * p.species + sp) * p.grid;
                assert_eq!(
                    &block[base + p.fe_dim..base + p.grid],
                    &orig[base + p.fe_dim..base + p.grid],
                    "grid points beyond fe_dim must be untouched"
                );
            }
        }
    }
}
