//! SEQ — sequential I/O, the *broadcast* pattern kernel.
//!
//! An N×N matrix distributed over the processors is initialized
//! element-wise from data produced on processor 0: processor 0 broadcasts
//! each element to each of the other processors, which collect the
//! elements they need. The program performs no computation; processor 0
//! sends N² O(1)-size messages to every other processor (paper §3.1).
//! Each element message is 8 B of data + 24 B PVM header + 58 B protocol
//! overhead = the 90-byte frames of Figure 3.
//!
//! The production loop is record-buffered, as Fortran sequential READs
//! are: producing one row of elements costs one I/O record time, and the
//! burst of element broadcasts that follows it is what gives SEQ its
//! strong low-harmonic periodicity (the paper's dominant 4 Hz component).

use crate::checksum;
use fxnet_fx::{BlockDist, RankCtx};
use fxnet_pvm::MessageBuilder;
use fxnet_sim::SimTime;

/// SEQ kernel parameters.
#[derive(Debug, Clone)]
pub struct SeqParams {
    /// Matrix dimension N.
    pub n: usize,
    /// Outer iterations (the paper iterated SEQ five times).
    pub iters: usize,
    /// Record I/O time to produce one row of elements on processor 0.
    pub row_io: SimTime,
}

impl SeqParams {
    /// The measured configuration. The paper does not state SEQ's N; we
    /// use N=48 with a 230 ms per-row record read so the packet rate,
    /// average bandwidth (≈58 KB/s) and ≈4 Hz row period match the
    /// reported statistics (DESIGN.md §5 documents this inference).
    pub fn paper() -> SeqParams {
        SeqParams {
            n: 48,
            iters: 5,
            row_io: SimTime::from_millis(230),
        }
    }

    /// A CI-sized configuration.
    pub fn tiny() -> SeqParams {
        SeqParams {
            n: 8,
            iters: 1,
            row_io: SimTime::from_millis(5),
        }
    }
}

/// The deterministic element value "read from disk" at (r, c).
pub fn element(n: usize, r: usize, c: usize) -> f64 {
    ((r * n + c) % 97) as f64 * 0.25 - 10.0
}

/// The per-rank SPMD program. Returns a checksum of the rank's collected
/// row block.
pub fn seq_rank(ctx: &mut RankCtx, p: &SeqParams) -> u64 {
    let (me, np) = (ctx.rank() as usize, ctx.nprocs() as usize);
    let dist = BlockDist::new(p.n, np);
    let mut block = vec![0.0f64; dist.size(me) * p.n];

    for _iter in 0..p.iters {
        if me == 0 {
            for r in 0..p.n {
                // One sequential-I/O record read per row.
                ctx.compute_time(p.row_io);
                ctx.phase_begin("element_broadcast");
                for c in 0..p.n {
                    let v = element(p.n, r, c);
                    if dist.owner(r) == 0 {
                        block[dist.local(r) * p.n + c] = v;
                    }
                    for dst in 1..np {
                        let mut b = MessageBuilder::new((r * p.n + c) as i32);
                        b.pack_f64(&[v]);
                        ctx.send(dst as u32, b.finish());
                    }
                }
                ctx.phase_end();
            }
        } else {
            for r in 0..p.n {
                ctx.phase_begin("element_broadcast");
                for c in 0..p.n {
                    let m = ctx.recv(0);
                    let v = m.reader().f64s(1)[0];
                    // Collect only the elements this rank needs.
                    if dist.owner(r) == me {
                        block[dist.local(r) * p.n + c] = v;
                    }
                }
                ctx.phase_end();
            }
        }
    }
    checksum(&block)
}

/// Sequential reference: per-rank block checksums.
pub fn seq_sequential(p: &SeqParams, np: usize) -> Vec<u64> {
    let dist = BlockDist::new(p.n, np);
    (0..np)
        .map(|rank| {
            let mut block = vec![0.0f64; dist.size(rank) * p.n];
            for r in dist.lo(rank)..dist.hi(rank) {
                for c in 0..p.n {
                    block[(r - dist.lo(rank)) * p.n + c] = element(p.n, r, c);
                }
            }
            checksum(&block)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_fx::{run_single, RunOptions, SpmdConfig};
    use fxnet_sim::FrameKind;

    fn cfg(p: u32) -> SpmdConfig {
        let mut c = SpmdConfig {
            p,
            hosts: p,
            ..SpmdConfig::default()
        };
        c.pvm.heartbeat = None;
        c
    }

    #[test]
    fn all_ranks_collect_their_blocks() {
        let params = SeqParams::tiny();
        let want = seq_sequential(&params, 4);
        let pp = params.clone();
        let res = run_single(cfg(4), move |ctx| seq_rank(ctx, &pp), RunOptions::default()).unwrap();
        assert_eq!(res.results, want);
    }

    #[test]
    fn element_frames_are_90_bytes() {
        let params = SeqParams::tiny();
        let res = run_single(
            cfg(4),
            move |ctx| seq_rank(ctx, &params),
            RunOptions::default(),
        )
        .unwrap();
        let data: Vec<u32> = res
            .trace
            .iter()
            .filter(|r| r.kind == FrameKind::Data)
            .map(|r| r.wire_len)
            .collect();
        assert!(!data.is_empty());
        assert!(
            data.iter().all(|&s| s == 90),
            "SEQ data frames must be 90 B"
        );
    }

    #[test]
    fn only_root_sends_data() {
        let params = SeqParams::tiny();
        let res = run_single(
            cfg(3),
            move |ctx| seq_rank(ctx, &params),
            RunOptions::default(),
        )
        .unwrap();
        for r in &res.trace {
            if r.kind == FrameKind::Data {
                assert_eq!(r.src.0, 0, "only processor 0 produces data");
            }
        }
    }

    #[test]
    fn message_count_scales_with_n_squared() {
        let params = SeqParams {
            n: 4,
            iters: 2,
            row_io: SimTime::from_millis(1),
        };
        let res = run_single(
            cfg(2),
            move |ctx| seq_rank(ctx, &params),
            RunOptions::default(),
        )
        .unwrap();
        let data = res
            .trace
            .iter()
            .filter(|r| r.kind == FrameKind::Data)
            .count();
        // n² × (p−1) × iters = 16 × 1 × 2.
        assert_eq!(data, 32);
    }
}
