//! End-to-end provenance properties over the six measured programs:
//! every data frame's cause chain terminates at exactly one application
//! op, delivered bytes conserve against committed bytes, and tagging is
//! invisible — a tagged run's trace is byte-identical to an untagged
//! run's, across seeds and both PVM routes.

use fxnet_apps::{airshed, KernelKind};
use fxnet_causal::{blame_violation, collective_paths, CauseDag, Provenance};
use fxnet_fx::{run_single, RunOptions, RunResult, SpmdConfig};
use fxnet_mix::{Mix, MixTenant, TenantProgram};
use fxnet_pvm::TenantMap;
use fxnet_sim::{FrameKind, SimTime};

const DIV: usize = 300;
const SEEDS: [u64; 2] = [1998, 7];

fn cfg(seed: u64) -> SpmdConfig {
    let mut cfg = SpmdConfig {
        p: 4,
        hosts: 9,
        seed,
        ..SpmdConfig::default()
    };
    cfg.pvm.net.seed = seed ^ 0x00C0_FFEE;
    cfg
}

fn causal_opts() -> RunOptions {
    RunOptions {
        causal: true,
        ..RunOptions::default()
    }
}

#[derive(Clone, Copy)]
enum Program {
    Kernel(KernelKind),
    Airshed,
}

fn run_program(p: Program, cfg: SpmdConfig, opts: RunOptions) -> RunResult<u64> {
    match p {
        Program::Kernel(k) => k.run_paper_opts(cfg, DIV, opts).expect("valid config"),
        Program::Airshed => {
            let params = airshed::AirshedParams::tiny();
            run_single(cfg, move |ctx| airshed::airshed_rank(ctx, &params), opts)
                .expect("valid config")
        }
    }
}

/// The shared property: tagged trace byte-identical to untagged, every
/// frame tagged in trace order, every data frame resolving to exactly
/// one application op, and per-op byte conservation.
fn assert_provenance(p: Program) {
    for seed in SEEDS {
        let tagged = run_program(p, cfg(seed), causal_opts());
        let untagged = run_program(p, cfg(seed), RunOptions::default());
        assert_eq!(
            tagged.trace, untagged.trace,
            "causal capture must not perturb the trace (seed {seed})"
        );

        let run = tagged.causal.as_ref().expect("causal capture attached");
        assert!(!run.ops.is_empty(), "programs send messages");
        assert_eq!(
            run.events.len(),
            tagged.trace.len(),
            "one causal event per trace row"
        );
        for (e, r) in run.events.iter().zip(tagged.trace.iter()) {
            assert_eq!(e.record, *r, "causal stream is in exact trace order");
        }

        let dag = CauseDag::build(run);
        for (i, e) in run.events.iter().enumerate() {
            if e.record.kind == FrameKind::Data {
                assert!(
                    matches!(dag.provenance(i), Provenance::Op { .. }),
                    "data frame {i} must trace to an application op (seed {seed})"
                );
            } else {
                assert!(
                    !matches!(dag.provenance(i), Provenance::Unknown),
                    "frame {i} has no cause at all (seed {seed})"
                );
            }
        }
        let report = dag.check_conservation().unwrap_or_else(|e| {
            panic!("conservation failed (seed {seed}): {e}");
        });
        assert!(report.data_bytes > 0);
    }
}

#[test]
fn sor_conserves_and_tags_invisibly() {
    assert_provenance(Program::Kernel(KernelKind::Sor));
}

#[test]
fn fft2d_conserves_and_tags_invisibly() {
    assert_provenance(Program::Kernel(KernelKind::Fft2d));
}

#[test]
fn t2dfft_conserves_and_tags_invisibly() {
    assert_provenance(Program::Kernel(KernelKind::T2dfft));
}

#[test]
fn seq_conserves_and_tags_invisibly() {
    assert_provenance(Program::Kernel(KernelKind::Seq));
}

#[test]
fn hist_conserves_and_tags_invisibly() {
    assert_provenance(Program::Kernel(KernelKind::Hist));
}

#[test]
fn airshed_conserves_and_tags_invisibly() {
    assert_provenance(Program::Airshed);
}

#[test]
fn daemon_route_conserves_through_udp_grams() {
    let mut c = cfg(1998);
    c.pvm.route = fxnet_pvm::Route::Daemon;
    let r = run_program(Program::Kernel(KernelKind::Hist), c.clone(), causal_opts());
    let run = r.causal.as_ref().expect("causal capture");
    let dag = CauseDag::build(run);
    dag.check_conservation()
        .unwrap_or_else(|e| panic!("daemon-route conservation failed: {e}"));
    // Daemon acks and heartbeats terminate at protocol causes, not ops.
    assert!(run
        .events
        .iter()
        .any(|e| e.record.kind == FrameKind::Datagram));
    let untagged = run_program(Program::Kernel(KernelKind::Hist), c, RunOptions::default());
    assert_eq!(r.trace, untagged.trace);
}

#[test]
fn collective_critical_paths_sum_exactly_to_elapsed_time() {
    let r = run_program(Program::Kernel(KernelKind::Sor), cfg(1998), causal_opts());
    let run = r.causal.as_ref().expect("causal capture");
    let spans = &r.telemetry.as_ref().expect("causal forces telemetry").spans;
    let map = TenantMap::pack([("SOR".to_string(), 4)]);
    let paths = collective_paths(run, spans, &map);
    assert!(!paths.is_empty(), "SOR has boundary exchanges");
    for p in &paths {
        assert_eq!(
            p.segments.total_ns(),
            p.elapsed_ns,
            "{}#{} segments must sum to the straggler's elapsed time",
            p.name,
            p.instance
        );
        assert!(p.straggler_rank < 4);
        assert_eq!(p.tenant, "SOR");
    }
    assert!(
        paths.iter().any(|p| p.frames > 0),
        "stragglers put frames on the wire"
    );
    assert!(paths.iter().any(|p| p.blocking_link.is_some()));
}

#[test]
fn watcher_violation_blames_the_overdriving_tenant() {
    let mut c = SpmdConfig::default();
    c.pvm.heartbeat = None;
    c.hosts = 1;
    let tenant = |name: &str, start_ms: u64, claim: f64| MixTenant {
        name: name.to_string(),
        program: TenantProgram::Shift {
            work_s: 0.05,
            bytes: 20_000,
            rounds: 4,
        },
        p: 2,
        start: SimTime::from_millis(start_ms),
        claim_scale: claim,
    };
    let out = Mix::new(c.clone())
        .solo_baselines(false)
        .watch(fxnet_watch::WatchConfig::default())
        .causal(true)
        .tenant(tenant("honest", 0, 1.0))
        .tenant(tenant("liar", 30, 0.1))
        .run();
    let watch = out.watch.as_ref().expect("watch report");
    let event = watch
        .events
        .iter()
        .find(|e| e.tenant == "liar")
        .expect("liar violation");
    let run = out.causal.as_ref().expect("causal capture");
    let blame = blame_violation(event, run, &out.map);
    assert!(blame.matched, "flight recorder located in causal stream");
    let top = blame.top().expect("causing chains");
    assert_eq!(top.tenant, "liar", "blame lands on the over-driver");
    assert!(top.bytes > 0 && top.ops > 0);

    // Watching + causal capture together still perturb nothing.
    let plain = Mix::new(c)
        .solo_baselines(false)
        .tenant(tenant("honest", 0, 1.0))
        .tenant(tenant("liar", 30, 0.1))
        .run();
    assert_eq!(out.trace, plain.trace);
}
