//! Deterministic JSON and Chrome trace-event exports.
//!
//! All values are built from the insertion-ordered [`serde::Value`]
//! object, so serializing the same run twice yields byte-identical
//! text. The Chrome trace-event output loads directly in Perfetto
//! (`ui.perfetto.dev`) or `chrome://tracing`.

use crate::blame::ViolationBlame;
use crate::critical::CollectivePath;
use crate::dag::{CauseDag, Provenance};
use fxnet_pvm::TenantMap;
use fxnet_sim::{FrameKind, Proto};
use serde::Value;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn kind_label(kind: FrameKind) -> &'static str {
    match kind {
        FrameKind::Data => "data",
        FrameKind::Ack => "ack",
        FrameKind::Syn => "syn",
        FrameKind::Datagram => "datagram",
    }
}

fn tenant_name(map: &TenantMap, tenant: u32) -> String {
    map.slices()
        .get(tenant as usize)
        .map_or_else(|| format!("tenant-{tenant}"), |s| s.name.clone())
}

/// The cause DAG as a deterministic JSON value: the op table, one entry
/// per delivered frame with its resolved provenance, the retransmit
/// edges, and the conservation summary.
pub fn dag_value(dag: &CauseDag, map: &TenantMap) -> Value {
    let ops: Vec<Value> = dag
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let a = op.cause.as_app().expect("ops carry app causes");
            obj(vec![
                ("op", Value::U64(i as u64)),
                ("tenant", Value::Str(tenant_name(map, a.tenant))),
                ("rank", Value::U64(u64::from(a.rank))),
                ("phase", Value::U64(u64::from(a.phase))),
                ("seq", Value::U64(u64::from(a.op))),
                ("dst", Value::U64(u64::from(op.dst))),
                ("time_ns", Value::U64(op.time.as_nanos())),
                ("payload_bytes", Value::U64(op.payload_bytes)),
                ("wire_bytes", Value::U64(op.wire_bytes)),
                (
                    "frames",
                    Value::Array(dag.emits[i].iter().map(|&f| Value::U64(f as u64)).collect()),
                ),
            ])
        })
        .collect();
    let frames: Vec<Value> = dag
        .events
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let cause = match dag.provenance(i) {
                Provenance::Op { op, retransmitted } => obj(vec![
                    ("kind", Value::Str("op".to_string())),
                    ("op", Value::U64(op as u64)),
                    ("retransmitted", Value::Bool(retransmitted)),
                ]),
                Provenance::Protocol(k) => obj(vec![
                    ("kind", Value::Str("protocol".to_string())),
                    ("artifact", Value::Str(k.label().to_string())),
                ]),
                Provenance::Unknown => obj(vec![("kind", Value::Str("none".to_string()))]),
            };
            obj(vec![
                ("frame", Value::U64(i as u64)),
                ("time_ns", Value::U64(e.record.time.as_nanos())),
                ("src", Value::U64(u64::from(e.record.src.0))),
                ("dst", Value::U64(u64::from(e.record.dst.0))),
                (
                    "proto",
                    Value::Str(
                        match e.record.proto {
                            Proto::Tcp => "tcp",
                            Proto::Udp => "udp",
                        }
                        .to_string(),
                    ),
                ),
                (
                    "frame_kind",
                    Value::Str(kind_label(e.record.kind).to_string()),
                ),
                ("wire_len", Value::U64(u64::from(e.record.wire_len))),
                ("cause", cause),
                ("queue_ns", Value::U64(e.meta.queue_ns)),
                ("backoff_ns", Value::U64(e.meta.backoff_ns)),
                ("tx_ns", Value::U64(e.meta.tx_ns)),
                ("collisions", Value::U64(u64::from(e.meta.attempts))),
            ])
        })
        .collect();
    let edges: Vec<Value> = dag
        .retransmit_edges
        .iter()
        .map(|&(a, b)| Value::Array(vec![Value::U64(a as u64), Value::U64(b as u64)]))
        .collect();
    let conservation = match dag.check_conservation() {
        Ok(rep) => obj(vec![
            ("holds", Value::Bool(true)),
            ("ops", Value::U64(rep.ops as u64)),
            ("data_bytes", Value::U64(rep.data_bytes)),
            ("app_frames", Value::U64(rep.app_frames as u64)),
            (
                "retransmitted_frames",
                Value::U64(rep.retransmitted_frames as u64),
            ),
            ("protocol_frames", Value::U64(rep.protocol_frames as u64)),
            ("untagged_frames", Value::U64(rep.untagged_frames as u64)),
        ]),
        Err(e) => obj(vec![
            ("holds", Value::Bool(false)),
            ("violation", Value::Str(e.to_string())),
        ]),
    };
    obj(vec![
        ("ops", Value::Array(ops)),
        ("frames", Value::Array(frames)),
        ("retransmit_edges", Value::Array(edges)),
        ("conservation", conservation),
    ])
}

/// Collective critical paths as a deterministic JSON array.
pub fn paths_value(paths: &[CollectivePath]) -> Value {
    Value::Array(
        paths
            .iter()
            .map(|p| {
                obj(vec![
                    ("tenant", Value::Str(p.tenant.clone())),
                    ("collective", Value::Str(p.name.clone())),
                    ("instance", Value::U64(u64::from(p.instance))),
                    ("straggler_rank", Value::U64(u64::from(p.straggler_rank))),
                    ("begin_ns", Value::U64(p.begin.as_nanos())),
                    ("end_ns", Value::U64(p.end.as_nanos())),
                    ("elapsed_ns", Value::U64(p.elapsed_ns)),
                    ("frames", Value::U64(u64::from(p.frames))),
                    (
                        "segments",
                        obj(vec![
                            ("compute_ns", Value::U64(p.segments.compute_ns)),
                            ("serialization_ns", Value::U64(p.segments.serialization_ns)),
                            ("wire_ns", Value::U64(p.segments.wire_ns)),
                            ("queue_ns", Value::U64(p.segments.queue_ns)),
                            ("backoff_ns", Value::U64(p.segments.backoff_ns)),
                            ("retransmit_ns", Value::U64(p.segments.retransmit_ns)),
                        ]),
                    ),
                    (
                        "blocking_link",
                        p.blocking_link
                            .as_ref()
                            .map_or(Value::Null, |l| Value::Str(l.clone())),
                    ),
                ])
            })
            .collect(),
    )
}

/// A violation blame as a deterministic JSON value.
pub fn blame_value(b: &ViolationBlame) -> Value {
    obj(vec![
        ("accused_tenant", Value::Str(b.tenant.clone())),
        ("check", Value::Str(b.check.clone())),
        ("time_ns", Value::U64(b.time.as_nanos())),
        ("window_frames", Value::U64(b.window as u64)),
        ("matched", Value::Bool(b.matched)),
        ("protocol_frames", Value::U64(u64::from(b.protocol_frames))),
        (
            "chains",
            Value::Array(
                b.chains
                    .iter()
                    .map(|c| {
                        obj(vec![
                            ("tenant", Value::Str(c.tenant.clone())),
                            ("rank", Value::U64(u64::from(c.rank))),
                            ("ops", Value::U64(u64::from(c.ops))),
                            ("frames", Value::U64(u64::from(c.frames))),
                            ("bytes", Value::U64(c.bytes)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The critical paths as Chrome trace-event JSON (Perfetto-loadable):
/// one complete (`ph:"X"`) slice per collective instance on track
/// `pid = tenant index, tid = straggler rank`, with its six segments
/// laid out as child slices, plus process-name metadata per tenant.
pub fn chrome_trace(paths: &[CollectivePath], map: &TenantMap) -> Value {
    let micros = |ns: u64| Value::F64(ns as f64 / 1000.0);
    let mut events: Vec<Value> = Vec::new();
    for (i, slice) in map.slices().iter().enumerate() {
        events.push(obj(vec![
            ("name", Value::Str("process_name".to_string())),
            ("ph", Value::Str("M".to_string())),
            ("pid", Value::U64(i as u64)),
            ("args", obj(vec![("name", Value::Str(slice.name.clone()))])),
        ]));
    }
    for p in paths {
        let pid = map
            .slices()
            .iter()
            .position(|s| s.name == p.tenant)
            .unwrap_or(map.slices().len()) as u64;
        let tid = u64::from(p.straggler_rank);
        let slice = |name: String, ts_ns: u64, dur_ns: u64| {
            obj(vec![
                ("name", Value::Str(name)),
                ("ph", Value::Str("X".to_string())),
                ("ts", micros(ts_ns)),
                ("dur", micros(dur_ns)),
                ("pid", Value::U64(pid)),
                ("tid", Value::U64(tid)),
            ])
        };
        events.push(slice(
            format!("{}#{}", p.name, p.instance),
            p.begin.as_nanos(),
            p.elapsed_ns,
        ));
        let s = &p.segments;
        let mut cursor = p.begin.as_nanos();
        for (label, dur) in [
            ("compute", s.compute_ns),
            ("serialization", s.serialization_ns),
            ("queue", s.queue_ns),
            ("backoff", s.backoff_ns),
            ("wire", s.wire_ns),
            ("retransmit", s.retransmit_ns),
        ] {
            if dur > 0 {
                events.push(slice(label.to_string(), cursor, dur));
            }
            cursor += dur;
        }
    }
    Value::Array(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical::SegmentBreakdown;
    use fxnet_fx::CausalRun;
    use fxnet_sim::SimTime;

    fn path() -> CollectivePath {
        CollectivePath {
            tenant: "SOR".to_string(),
            name: "boundary_exchange".to_string(),
            instance: 0,
            straggler_rank: 2,
            begin: SimTime::from_micros(100),
            end: SimTime::from_micros(160),
            elapsed_ns: 60_000,
            frames: 3,
            segments: SegmentBreakdown {
                compute_ns: 10_000,
                serialization_ns: 5_000,
                wire_ns: 20_000,
                queue_ns: 25_000,
                backoff_ns: 0,
                retransmit_ns: 0,
            },
            blocking_link: Some("h2->h3".to_string()),
        }
    }

    #[test]
    fn exports_are_deterministic_text() {
        let map = TenantMap::pack([("SOR".to_string(), 4)]);
        let dag = CauseDag::build(&CausalRun::default());
        let a = serde::json::to_string(&dag_value(&dag, &map));
        let b = serde::json::to_string(&dag_value(&dag, &map));
        assert_eq!(a, b);
        let p = [path()];
        assert_eq!(
            serde::json::to_string(&paths_value(&p)),
            serde::json::to_string(&paths_value(&p))
        );
    }

    #[test]
    fn chrome_trace_slices_tile_the_window() {
        let map = TenantMap::pack([("SOR".to_string(), 4)]);
        let trace = chrome_trace(&[path()], &map);
        let Value::Array(events) = &trace else {
            panic!("trace must be an array")
        };
        // Metadata + parent + 4 non-empty segments.
        assert_eq!(events.len(), 6);
        let parent = &events[1];
        assert_eq!(parent.get("ph").unwrap(), &Value::Str("X".to_string()));
        assert_eq!(parent.get("ts").unwrap(), &Value::F64(100.0));
        assert_eq!(parent.get("dur").unwrap(), &Value::F64(60.0));
        // Child slices tile [100, 160] µs without gaps.
        let mut cursor = 100.0;
        for e in &events[2..] {
            assert_eq!(e.get("ts").unwrap(), &Value::F64(cursor));
            let Some(&Value::F64(d)) = e.get("dur") else {
                panic!("dur")
            };
            cursor += d;
        }
        assert_eq!(cursor, 160.0);
    }
}
