//! # fxnet-causal
//!
//! Causal provenance for the simulated testbed: every data byte on the
//! wire traced back to the application operation that caused it, across
//! every layer of the stack.
//!
//! The engine tags each application send with a compact [`CauseId`]
//! (tenant, rank, phase-span, op sequence). The id rides the protocol
//! layer's token side-table — PVM fragment writes, TCP segmentation
//! *and retransmission* (a retransmitted segment keeps its original
//! cause), UDP daemon grams — down to delivered MAC frames, including
//! the collision/backoff history each frame accumulated. Nothing is
//! added to the frames themselves, so a tagged run produces a
//! byte-identical trace to an untagged run.
//!
//! From the tagged stream ([`fxnet_fx::CausalRun`]) this crate builds:
//!
//! * [`CauseDag`] — the per-run cause DAG: op → frame emission edges,
//!   frame → frame retransmit edges, protocol-artifact terminals. Frame
//!   provenance is conservation-checked: per op, the distinct delivered
//!   data bytes equal exactly the transport bytes the op committed
//!   ([`CauseDag::check_conservation`]).
//! * [`collective_paths`] — per-collective straggler attribution: which
//!   rank blocked each collective instance, with the straggler's elapsed
//!   time split into compute / serialization / wire / queue / backoff /
//!   retransmit segments that sum exactly to the elapsed simulated time,
//!   and the most contended link named.
//! * [`blame_violation`] — a watcher contract violation's
//!   flight-recorder frames resolved to the causing tenant → rank → op
//!   chains.
//! * [`export`] — deterministic JSON values for all of the above plus a
//!   Chrome trace-event (Perfetto-loadable) timeline of the critical
//!   paths.

pub mod blame;
pub mod critical;
pub mod dag;
pub mod export;

pub use blame::{blame_violation, BlameChain, ViolationBlame};
pub use critical::{
    collective_paths, contended_intervals, intervals_overlap, CollectivePath, SegmentBreakdown,
};
pub use dag::{CauseDag, ConservationError, ConservationReport, Provenance};
pub use export::{blame_value, chrome_trace, dag_value, paths_value};
pub use fxnet_sim::{AppCause, CausalEvent, Cause, CauseId, FrameMeta, ProtoCause};
