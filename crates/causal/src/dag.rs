//! The cross-layer cause DAG and conservation-checked frame provenance.

use fxnet_fx::{AppOp, CausalRun};
use fxnet_sim::frame::{ETHER_OVERHEAD, IP_HEADER, TCP_HEADER, UDP_HEADER};
use fxnet_sim::{CausalEvent, CauseId, FrameKind, FrameRecord, Proto, ProtoCause};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Where one delivered frame came from, resolved through the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Caused by the application op at this index in [`CauseDag::ops`].
    /// `retransmitted` marks copies that reached the wire again after a
    /// TCP timeout — the chain passes through a `Retransmit` edge but
    /// still terminates at the original op.
    Op { op: usize, retransmitted: bool },
    /// A protocol artifact with no application op behind it.
    Protocol(ProtoCause),
    /// Untagged (capture was off when the frame's token was minted).
    Unknown,
}

/// Aggregate counts from a successful conservation check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConservationReport {
    /// Application ops checked.
    pub ops: usize,
    /// Distinct delivered data bytes attributed to ops (retransmitted
    /// copies deduplicated by TCP sequence range).
    pub data_bytes: u64,
    /// Delivered frames whose chain terminates at an application op.
    pub app_frames: usize,
    /// App frames that were retransmitted copies.
    pub retransmitted_frames: usize,
    /// Frames whose chain terminates at a protocol artifact.
    pub protocol_frames: usize,
    /// Frames with no cause at all.
    pub untagged_frames: usize,
}

/// One op whose delivered bytes did not match what it committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConservationError {
    /// Index into [`CauseDag::ops`].
    pub op: usize,
    /// The op's cause id.
    pub cause: CauseId,
    /// Transport bytes the op committed at send time.
    pub expected: u64,
    /// Distinct data bytes actually delivered under the op's cause.
    pub delivered: u64,
}

impl fmt::Display for ConservationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "op {} (cause {:#x}) committed {} transport bytes but {} were delivered",
            self.op, self.cause.0, self.expected, self.delivered
        )
    }
}

/// The per-run causal DAG.
///
/// Nodes are the recorded application ops ([`CauseDag::ops`]) and the
/// delivered frames ([`CauseDag::events`], in exact trace order — index
/// `i` describes row `i` of the promiscuous trace). Edges are op →
/// frame emissions ([`CauseDag::emits`]) and frame → frame retransmits
/// ([`CauseDag::retransmit_edges`]). Protocol artifacts (ACK, SYN,
/// heartbeat, daemon ACK) are terminal causes of their own.
#[derive(Debug, Clone, Default)]
pub struct CauseDag {
    /// Application op nodes, in recording order.
    pub ops: Vec<AppOp>,
    /// Frame nodes: one per delivered frame, in trace order.
    pub events: Vec<CausalEvent>,
    /// Per-op emission edges: indices into `events` of the frames the
    /// op put on the wire directly (first transmissions and UDP grams).
    pub emits: Vec<Vec<usize>>,
    /// Retransmit edges `(original, copy)`: the copy carries the same
    /// bytes — and the same cause — as the earlier delivery.
    pub retransmit_edges: Vec<(usize, usize)>,
    op_of_event: Vec<Option<usize>>,
}

impl CauseDag {
    /// Build the DAG from a causal capture.
    pub fn build(run: &CausalRun) -> CauseDag {
        let op_index: HashMap<CauseId, usize> = run
            .ops
            .iter()
            .enumerate()
            .map(|(i, o)| (o.cause, i))
            .collect();
        let mut emits = vec![Vec::new(); run.ops.len()];
        let mut retransmit_edges = Vec::new();
        let mut op_of_event = Vec::with_capacity(run.events.len());
        // Most recent delivered copy of each (conn, dir, seq) segment.
        let mut last_copy: HashMap<(u32, u8, u64), usize> = HashMap::new();
        for (i, e) in run.events.iter().enumerate() {
            let op = op_index.get(&e.cause).copied();
            op_of_event.push(op);
            if let Some(oi) = op {
                if e.retx {
                    match last_copy.get(&(e.conn, e.dir, e.seq)) {
                        Some(&orig) => retransmit_edges.push((orig, i)),
                        // The original copy was dropped by the MAC
                        // before delivery; this copy is the op's first.
                        None => emits[oi].push(i),
                    }
                } else {
                    emits[oi].push(i);
                }
                if e.record.kind == FrameKind::Data {
                    last_copy.insert((e.conn, e.dir, e.seq), i);
                }
            }
        }
        CauseDag {
            ops: run.ops.clone(),
            events: run.events.clone(),
            emits,
            retransmit_edges,
            op_of_event,
        }
    }

    /// Resolve the cause chain of frame `i` (trace row `i`).
    pub fn provenance(&self, i: usize) -> Provenance {
        match self.op_of_event[i] {
            Some(op) => Provenance::Op {
                op,
                retransmitted: self.events[i].retx,
            },
            None => match self.events[i].cause.decode() {
                fxnet_sim::Cause::Protocol(k) => Provenance::Protocol(k),
                _ => Provenance::Unknown,
            },
        }
    }

    /// The op index frame `i` resolves to, if its chain ends at an op.
    pub fn op_of(&self, i: usize) -> Option<usize> {
        self.op_of_event[i]
    }

    /// Check byte conservation: for every op, the distinct data bytes
    /// delivered under its cause (TCP segments deduplicated by
    /// `(conn, dir, seq)`; UDP grams delivered exactly once) must equal
    /// the transport bytes the op committed at send time.
    ///
    /// # Errors
    /// The first op whose delivered bytes disagree with its commitment.
    pub fn check_conservation(&self) -> Result<ConservationReport, ConservationError> {
        let mut delivered = vec![0u64; self.ops.len()];
        let mut seen: HashSet<(usize, u32, u8, u64)> = HashSet::new();
        let mut report = ConservationReport {
            ops: self.ops.len(),
            ..ConservationReport::default()
        };
        for (i, e) in self.events.iter().enumerate() {
            match self.op_of_event[i] {
                Some(oi) => {
                    report.app_frames += 1;
                    if e.retx {
                        report.retransmitted_frames += 1;
                    }
                    let bytes = data_payload(&e.record);
                    match e.record.kind {
                        FrameKind::Data => {
                            if seen.insert((oi, e.conn, e.dir, e.seq)) {
                                delivered[oi] += bytes;
                            }
                        }
                        FrameKind::Datagram => delivered[oi] += bytes,
                        FrameKind::Ack | FrameKind::Syn => {}
                    }
                }
                None => {
                    if e.cause.is_some() {
                        report.protocol_frames += 1;
                    } else {
                        report.untagged_frames += 1;
                    }
                }
            }
        }
        for (oi, op) in self.ops.iter().enumerate() {
            if delivered[oi] != op.wire_bytes {
                return Err(ConservationError {
                    op: oi,
                    cause: op.cause,
                    expected: op.wire_bytes,
                    delivered: delivered[oi],
                });
            }
            report.data_bytes += delivered[oi];
        }
        Ok(report)
    }
}

/// Transport payload bytes of a delivered frame (bytes above the
/// TCP/UDP header — what the protocol layer's write committed).
pub(crate) fn data_payload(rec: &FrameRecord) -> u64 {
    let hdr = match rec.proto {
        Proto::Tcp => ETHER_OVERHEAD + IP_HEADER + TCP_HEADER,
        Proto::Udp => ETHER_OVERHEAD + IP_HEADER + UDP_HEADER,
    };
    u64::from(rec.wire_len.saturating_sub(hdr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::{FrameMeta, HostId, SimTime};

    fn data_event(cause: CauseId, seq: u64, payload: u32, retx: bool) -> CausalEvent {
        CausalEvent {
            record: FrameRecord {
                time: SimTime::from_micros(seq),
                wire_len: ETHER_OVERHEAD + IP_HEADER + TCP_HEADER + payload,
                proto: Proto::Tcp,
                kind: FrameKind::Data,
                src: HostId(0),
                dst: HostId(1),
            },
            cause,
            retx,
            conn: 1,
            dir: 0,
            seq,
            meta: FrameMeta::default(),
        }
    }

    fn op(cause: CauseId, wire_bytes: u64) -> AppOp {
        AppOp {
            cause,
            dst: 1,
            time: SimTime::ZERO,
            payload_bytes: wire_bytes,
            wire_bytes,
        }
    }

    #[test]
    fn retransmitted_copy_keeps_its_cause_and_adds_an_edge() {
        let c = CauseId::app(0, 0, 1, 0);
        let run = CausalRun {
            ops: vec![op(c, 300)],
            events: vec![
                data_event(c, 0, 100, false),
                data_event(c, 100, 200, false),
                data_event(c, 100, 200, true), // timeout copy of seq 100
            ],
        };
        let dag = CauseDag::build(&run);
        assert_eq!(dag.emits[0], vec![0, 1]);
        assert_eq!(dag.retransmit_edges, vec![(1, 2)]);
        assert_eq!(
            dag.provenance(2),
            Provenance::Op {
                op: 0,
                retransmitted: true
            }
        );
        // Conservation deduplicates the retransmitted bytes.
        let rep = dag.check_conservation().unwrap();
        assert_eq!(rep.data_bytes, 300);
        assert_eq!(rep.retransmitted_frames, 1);
    }

    #[test]
    fn protocol_and_untagged_frames_terminate_off_the_op_table() {
        let run = CausalRun {
            ops: vec![],
            events: vec![
                data_event(CauseId::protocol(ProtoCause::Ack), 0, 0, false),
                data_event(CauseId::NONE, 0, 0, false),
            ],
        };
        let dag = CauseDag::build(&run);
        assert_eq!(dag.provenance(0), Provenance::Protocol(ProtoCause::Ack));
        assert_eq!(dag.provenance(1), Provenance::Unknown);
        let rep = dag.check_conservation().unwrap();
        assert_eq!(rep.protocol_frames, 1);
        assert_eq!(rep.untagged_frames, 1);
    }

    #[test]
    fn short_delivery_fails_conservation() {
        let c = CauseId::app(0, 2, 1, 7);
        let run = CausalRun {
            ops: vec![op(c, 500)],
            events: vec![data_event(c, 0, 100, false)],
        };
        let err = CauseDag::build(&run).check_conservation().unwrap_err();
        assert_eq!(err.expected, 500);
        assert_eq!(err.delivered, 100);
        assert!(err.to_string().contains("500"));
    }
}
