//! Collective critical paths: per-instance straggler attribution with
//! an exact decomposition of the straggler's elapsed time.

use fxnet_fx::CausalRun;
use fxnet_pvm::TenantMap;
use fxnet_sim::SimTime;
use fxnet_telemetry::{SpanKind, SpanRecord};
use std::collections::HashMap;

/// The straggler's elapsed time split into six exhaustive segments.
/// By construction the six fields sum exactly to the instance's
/// `elapsed_ns` — nothing is dropped and nothing is double-counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentBreakdown {
    /// Local computation inside the collective window.
    pub compute_ns: u64,
    /// Time neither computing nor blocked: message assembly and the
    /// per-send software overheads (the paper's copy loop).
    pub serialization_ns: u64,
    /// Blocked time covered by this rank's own frames occupying the
    /// wire (first transmissions).
    pub wire_ns: u64,
    /// Blocked time spent queued behind other traffic (deference, IFG,
    /// head-of-line, switch queues) or waiting on peers.
    pub queue_ns: u64,
    /// Blocked time covered by collision backoff of this rank's frames.
    pub backoff_ns: u64,
    /// Blocked time covered by retransmitted copies on the wire.
    pub retransmit_ns: u64,
}

impl SegmentBreakdown {
    /// Sum of all six segments; always equals the path's `elapsed_ns`.
    pub fn total_ns(&self) -> u64 {
        self.compute_ns
            + self.serialization_ns
            + self.wire_ns
            + self.queue_ns
            + self.backoff_ns
            + self.retransmit_ns
    }
}

/// The critical path of one collective instance: the rank every other
/// participant waited for, and where its time went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectivePath {
    /// Tenant (group) display name.
    pub tenant: String,
    /// Collective span name ("boundary_exchange", "transpose", ...).
    pub name: String,
    /// Zero-based occurrence of this collective on the tenant's ranks.
    pub instance: u32,
    /// The global rank whose span ended last — the one the collective
    /// waited for.
    pub straggler_rank: u32,
    /// Straggler window start.
    pub begin: SimTime,
    /// Straggler window end (= the collective's completion).
    pub end: SimTime,
    /// Straggler span duration.
    pub elapsed_ns: u64,
    /// Frames the straggler's sends in this phase put on the wire.
    pub frames: u32,
    /// Exact decomposition of `elapsed_ns`.
    pub segments: SegmentBreakdown,
    /// The `hSRC->hDST` link whose frame waited longest (queue plus
    /// backoff) among the straggler's frames — the contended link.
    pub blocking_link: Option<String>,
}

/// Per-rank span bookkeeping: collective spans in phase order (the
/// engine increments the rank's phase counter on every span begin, so
/// begin order reproduces phase numbering), plus clipping sources.
struct RankSpans<'a> {
    /// `(phase_number, span)` for collective spans, in begin order.
    collectives: Vec<(u32, &'a SpanRecord)>,
    compute: Vec<&'a SpanRecord>,
    blocked: Vec<&'a SpanRecord>,
}

fn overlap_ns(s: &SpanRecord, wb: SimTime, we: SimTime) -> u64 {
    let b = s.begin.max(wb);
    let e = s.end.min(we);
    e.saturating_sub(b).as_nanos()
}

/// Compute the critical path of every collective instance in the run.
///
/// `spans` is the run's telemetry span list (causal capture forces
/// telemetry on, so it is always present in a causal run); `map` names
/// the tenants the cause ids index.
pub fn collective_paths(
    run: &CausalRun,
    spans: &[SpanRecord],
    map: &TenantMap,
) -> Vec<CollectivePath> {
    // Index the tagged frames by (sender rank, phase).
    let mut events_at: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
    for (i, e) in run.events.iter().enumerate() {
        if let Some(a) = e.cause.as_app() {
            events_at.entry((a.rank, a.phase)).or_default().push(i);
        }
    }

    // Per-rank span lists; collective spans get their phase numbers by
    // begin order (ties: the longer span began first on the stack).
    let mut per_rank: HashMap<u32, RankSpans<'_>> = HashMap::new();
    for s in spans {
        let r = per_rank.entry(s.rank).or_insert_with(|| RankSpans {
            collectives: Vec::new(),
            compute: Vec::new(),
            blocked: Vec::new(),
        });
        match s.kind {
            SpanKind::Collective => r.collectives.push((0, s)),
            SpanKind::Compute => r.compute.push(s),
            SpanKind::BlockedRecv | SpanKind::BlockedSend | SpanKind::Barrier => r.blocked.push(s),
        }
    }
    for r in per_rank.values_mut() {
        r.collectives
            .sort_by_key(|(_, s)| (s.begin, std::cmp::Reverse(s.end)));
        for (i, (phase, _)) in r.collectives.iter_mut().enumerate() {
            *phase = i as u32 + 1;
        }
    }

    let mut keyed: Vec<((u64, usize, String, u32), CollectivePath)> = Vec::new();
    for (ti, slice) in map.slices().iter().enumerate() {
        let ranks: Vec<u32> = (slice.base..slice.base + slice.p).collect();
        // Collective names in first-seen order across the tenant.
        let mut names: Vec<&str> = Vec::new();
        for &r in &ranks {
            if let Some(rs) = per_rank.get(&r) {
                for (_, s) in &rs.collectives {
                    if !names.contains(&s.name.as_str()) {
                        names.push(&s.name);
                    }
                }
            }
        }
        for name in names {
            // k-th occurrence of `name` on each participating rank.
            let occurrences: Vec<Vec<(u32, &SpanRecord)>> = ranks
                .iter()
                .map(|r| {
                    per_rank
                        .get(r)
                        .map(|rs| {
                            rs.collectives
                                .iter()
                                .filter(|(_, s)| s.name == name)
                                .map(|&(ph, s)| (ph, s))
                                .collect()
                        })
                        .unwrap_or_default()
                })
                .collect();
            let instances = occurrences.iter().map(Vec::len).max().unwrap_or(0);
            for k in 0..instances {
                // Straggler: latest end; ties go to the lowest rank.
                let members = ranks
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &r)| occurrences[i].get(k).map(|&(ph, s)| (r, ph, s)));
                let Some((rank, phase, span)) =
                    members.max_by_key(|&(r, _, s)| (s.end, std::cmp::Reverse(r)))
                else {
                    continue;
                };
                let (wb, we) = (span.begin, span.end);
                let elapsed = we.saturating_sub(wb).as_nanos();
                let rs = per_rank.get(&rank).expect("straggler has spans");
                let compute_raw: u64 = rs.compute.iter().map(|s| overlap_ns(s, wb, we)).sum();
                let blocked_raw: u64 = rs.blocked.iter().map(|s| overlap_ns(s, wb, we)).sum();
                let idxs = events_at.get(&(rank, phase)).map_or(&[][..], Vec::as_slice);
                let retx_tx: u64 = idxs
                    .iter()
                    .filter(|&&i| run.events[i].retx)
                    .map(|&i| run.events[i].meta.tx_ns)
                    .sum();
                let first_tx: u64 = idxs
                    .iter()
                    .filter(|&&i| !run.events[i].retx)
                    .map(|&i| run.events[i].meta.tx_ns)
                    .sum();
                let backoff_raw: u64 = idxs.iter().map(|&i| run.events[i].meta.backoff_ns).sum();

                // Budget cascade: clamp each bucket to what remains so
                // the six segments sum to `elapsed` exactly.
                let mut rem = elapsed;
                let compute_ns = compute_raw.min(rem);
                rem -= compute_ns;
                let blocked = blocked_raw.min(rem);
                let serialization_ns = rem - blocked;
                let mut brem = blocked;
                let retransmit_ns = retx_tx.min(brem);
                brem -= retransmit_ns;
                let backoff_ns = backoff_raw.min(brem);
                brem -= backoff_ns;
                let wire_ns = first_tx.min(brem);
                brem -= wire_ns;
                let queue_ns = brem;

                // The contended link: where the worst-waiting frame was
                // held up. On a multi-segment fabric the frame's meta
                // names the bottleneck trunk when an inter-node link
                // out-waited the access hops; otherwise the host pair
                // identifies the (single-hop or access) link.
                let blocking_link = idxs
                    .iter()
                    .max_by_key(|&&i| {
                        let m = run.events[i].meta;
                        (m.queue_ns + m.backoff_ns, std::cmp::Reverse(i))
                    })
                    .map(|&i| {
                        let e = &run.events[i];
                        e.meta
                            .trunk_label()
                            .unwrap_or_else(|| format!("h{}->h{}", e.record.src.0, e.record.dst.0))
                    });

                keyed.push((
                    (wb.as_nanos(), ti, name.to_string(), k as u32),
                    CollectivePath {
                        tenant: slice.name.clone(),
                        name: name.to_string(),
                        instance: k as u32,
                        straggler_rank: rank,
                        begin: wb,
                        end: we,
                        elapsed_ns: elapsed,
                        frames: idxs.len() as u32,
                        segments: SegmentBreakdown {
                            compute_ns,
                            serialization_ns,
                            wire_ns,
                            queue_ns,
                            backoff_ns,
                            retransmit_ns,
                        },
                        blocking_link,
                    },
                ));
            }
        }
    }
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    keyed.into_iter().map(|(_, p)| p).collect()
}

/// The simulated-time intervals during which `link` was the blocking
/// link of some collective critical path: the `[begin, end)` windows of
/// every path blaming `link`, sorted and merged (overlapping or abutting
/// windows coalesce). This is the causal side of the fabric-health
/// cross-check — the weather map's hotspot windows must overlap these.
pub fn contended_intervals(paths: &[CollectivePath], link: &str) -> Vec<(SimTime, SimTime)> {
    let mut spans: Vec<(SimTime, SimTime)> = paths
        .iter()
        .filter(|p| p.blocking_link.as_deref() == Some(link))
        .map(|p| (p.begin, p.end))
        .collect();
    spans.sort();
    let mut merged: Vec<(SimTime, SimTime)> = Vec::new();
    for (b, e) in spans {
        match merged.last_mut() {
            Some((_, le)) if b <= *le => *le = (*le).max(e),
            _ => merged.push((b, e)),
        }
    }
    merged
}

/// Whether two sorted interval sets share any positive-length overlap.
/// Both inputs are `[begin, end)` lists sorted by begin (the shape
/// [`contended_intervals`] returns).
pub fn intervals_overlap(a: &[(SimTime, SimTime)], b: &[(SimTime, SimTime)]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (ab, ae) = a[i];
        let (bb, be) = b[j];
        if ab.max(bb) < ae.min(be) {
            return true;
        }
        if ae <= be {
            i += 1;
        } else {
            j += 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_fx::AppOp;
    use fxnet_sim::frame::{ETHER_OVERHEAD, IP_HEADER, TCP_HEADER};
    use fxnet_sim::{CausalEvent, CauseId, FrameKind, FrameMeta, FrameRecord, HostId, Proto};

    fn span(rank: u32, name: &str, kind: SpanKind, begin_us: u64, end_us: u64) -> SpanRecord {
        SpanRecord {
            rank,
            name: name.to_string(),
            kind,
            begin: SimTime::from_micros(begin_us),
            end: SimTime::from_micros(end_us),
        }
    }

    fn event(rank: u32, phase: u32, op: u32, meta: FrameMeta) -> CausalEvent {
        CausalEvent {
            record: FrameRecord {
                time: SimTime::from_micros(10),
                wire_len: ETHER_OVERHEAD + IP_HEADER + TCP_HEADER + 100,
                proto: Proto::Tcp,
                kind: FrameKind::Data,
                src: HostId(rank),
                dst: HostId(rank + 1),
            },
            cause: CauseId::app(0, rank, phase, op),
            retx: false,
            conn: 1,
            dir: 0,
            seq: u64::from(op) * 100,
            meta,
        }
    }

    #[test]
    fn straggler_is_found_and_segments_sum_exactly() {
        let map = TenantMap::pack([("T".to_string(), 2)]);
        // Rank 1 ends later: it is the straggler of instance 0.
        let spans = vec![
            span(0, "exchange", SpanKind::Collective, 0, 50),
            span(1, "exchange", SpanKind::Collective, 0, 100),
            span(1, "compute", SpanKind::Compute, 0, 20),
            span(1, "recv", SpanKind::BlockedRecv, 30, 90),
        ];
        let meta = FrameMeta {
            queue_ns: 5_000,
            backoff_ns: 10_000,
            tx_ns: 20_000,
            attempts: 1,
            trunk: 0,
        };
        let run = CausalRun {
            ops: vec![AppOp {
                cause: CauseId::app(0, 1, 1, 0),
                dst: 0,
                time: SimTime::from_micros(25),
                payload_bytes: 100,
                wire_bytes: 100,
            }],
            events: vec![event(1, 1, 0, meta)],
        };
        let paths = collective_paths(&run, &spans, &map);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.straggler_rank, 1);
        assert_eq!(p.elapsed_ns, 100_000);
        assert_eq!(p.segments.total_ns(), p.elapsed_ns);
        assert_eq!(p.segments.compute_ns, 20_000);
        // Blocked 60 µs: 10 backoff + 20 wire + 30 residual queue.
        assert_eq!(p.segments.backoff_ns, 10_000);
        assert_eq!(p.segments.wire_ns, 20_000);
        assert_eq!(p.segments.queue_ns, 30_000);
        assert_eq!(p.segments.retransmit_ns, 0);
        // 100 − 20 compute − 60 blocked = 20 µs serialization.
        assert_eq!(p.segments.serialization_ns, 20_000);
        assert_eq!(p.blocking_link.as_deref(), Some("h1->h2"));
        assert_eq!(p.frames, 1);
    }

    #[test]
    fn contended_intervals_merge_and_overlap() {
        let mk = |link: Option<&str>, b_us: u64, e_us: u64| CollectivePath {
            tenant: "T".into(),
            name: "x".into(),
            instance: 0,
            straggler_rank: 0,
            begin: SimTime::from_micros(b_us),
            end: SimTime::from_micros(e_us),
            elapsed_ns: (e_us - b_us) * 1000,
            frames: 0,
            segments: SegmentBreakdown::default(),
            blocking_link: link.map(String::from),
        };
        let paths = vec![
            mk(Some("trunk:n0-n1"), 0, 10),
            mk(Some("trunk:n0-n1"), 5, 20),
            mk(Some("h0->h1"), 15, 25),
            mk(Some("trunk:n0-n1"), 40, 50),
            mk(None, 60, 70),
        ];
        let ivs = contended_intervals(&paths, "trunk:n0-n1");
        assert_eq!(
            ivs,
            vec![
                (SimTime::from_micros(0), SimTime::from_micros(20)),
                (SimTime::from_micros(40), SimTime::from_micros(50)),
            ]
        );
        let hot = vec![(SimTime::from_micros(18), SimTime::from_micros(22))];
        assert!(intervals_overlap(&ivs, &hot));
        let cold = vec![(SimTime::from_micros(20), SimTime::from_micros(40))];
        assert!(!intervals_overlap(&ivs, &cold), "abutting is not overlap");
        assert!(contended_intervals(&paths, "nowhere").is_empty());
        assert!(!intervals_overlap(&[], &hot));
    }

    #[test]
    fn instances_pair_by_occurrence_across_ranks() {
        let map = TenantMap::pack([("T".to_string(), 2)]);
        let spans = vec![
            span(0, "x", SpanKind::Collective, 0, 10),
            span(1, "x", SpanKind::Collective, 0, 5),
            span(0, "x", SpanKind::Collective, 20, 30),
            span(1, "x", SpanKind::Collective, 20, 40),
        ];
        let run = CausalRun::default();
        let paths = collective_paths(&run, &spans, &map);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].straggler_rank, 0);
        assert_eq!(paths[1].straggler_rank, 1);
        assert_eq!(paths[1].instance, 1);
        for p in &paths {
            assert_eq!(p.segments.total_ns(), p.elapsed_ns);
        }
    }
}
