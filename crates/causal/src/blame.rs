//! Violation blame: resolve a watcher event's flight-recorder frames to
//! the tenant → rank → op chains that caused them.

use fxnet_fx::CausalRun;
use fxnet_pvm::TenantMap;
use fxnet_sim::SimTime;
use fxnet_watch::WatchEvent;
use std::collections::{BTreeMap, BTreeSet};

/// One causing chain: a tenant's rank and what it contributed to the
/// flight-recorder window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameChain {
    /// Tenant display name (or `tenant-N` if the map does not cover the
    /// cause's tenant index).
    pub tenant: String,
    /// Global rank that issued the causing ops.
    pub rank: u32,
    /// Distinct application ops behind this rank's frames.
    pub ops: u32,
    /// Frames in the window caused by this rank (retransmitted copies
    /// included — they occupied the wire too).
    pub frames: u32,
    /// Wire bytes those frames put on the medium.
    pub bytes: u64,
}

/// A contract violation resolved to its causes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationBlame {
    /// The tenant the watcher accused.
    pub tenant: String,
    /// Which contract check fired.
    pub check: String,
    /// When it fired.
    pub time: SimTime,
    /// Flight-recorder frames in the event.
    pub window: usize,
    /// Whether the recorder window was located in the causal stream.
    /// The watcher and the causal capture observe the same delivery
    /// stream, so this only fails if the event came from another run.
    pub matched: bool,
    /// Causing chains, heaviest wire-byte contributor first.
    pub chains: Vec<BlameChain>,
    /// Window frames with protocol causes (ACKs, SYNs, heartbeats).
    pub protocol_frames: u32,
}

impl ViolationBlame {
    /// The heaviest contributor, if any chain matched.
    pub fn top(&self) -> Option<&BlameChain> {
        self.chains.first()
    }
}

/// Resolve `event`'s flight recorder against the run's causal stream.
///
/// The recorder is a contiguous window of the delivery stream ending at
/// the triggering frame; the causal stream is that same stream, tagged.
/// The window is located by exact record match and each frame in it is
/// attributed through its cause chain, grouped by (tenant, rank).
pub fn blame_violation(event: &WatchEvent, run: &CausalRun, map: &TenantMap) -> ViolationBlame {
    let recorder = &event.flight_recorder;
    let n = recorder.len();
    let window = (n > 0)
        .then(|| {
            (0..run.events.len().saturating_sub(n - 1)).find(|&start| {
                run.events[start..start + n]
                    .iter()
                    .zip(recorder.iter())
                    .all(|(e, r)| e.record == *r)
            })
        })
        .flatten();

    let mut grouped: BTreeMap<(u32, u32), (BTreeSet<u64>, u32, u64)> = BTreeMap::new();
    let mut protocol_frames = 0u32;
    if let Some(start) = window {
        for e in &run.events[start..start + n] {
            match e.cause.as_app() {
                Some(a) => {
                    let entry = grouped.entry((a.tenant, a.rank)).or_default();
                    entry.0.insert(e.cause.0);
                    entry.1 += 1;
                    entry.2 += u64::from(e.record.wire_len);
                }
                None => {
                    if e.cause.is_some() {
                        protocol_frames += 1;
                    }
                }
            }
        }
    }

    let mut chains: Vec<BlameChain> = grouped
        .into_iter()
        .map(|((tenant, rank), (ops, frames, bytes))| BlameChain {
            tenant: map
                .slices()
                .get(tenant as usize)
                .map_or_else(|| format!("tenant-{tenant}"), |s| s.name.clone()),
            rank,
            ops: ops.len() as u32,
            frames,
            bytes,
        })
        .collect();
    chains.sort_by(|a, b| {
        b.bytes
            .cmp(&a.bytes)
            .then_with(|| a.tenant.cmp(&b.tenant))
            .then_with(|| a.rank.cmp(&b.rank))
    });

    ViolationBlame {
        tenant: event.tenant.clone(),
        check: event.check.clone(),
        time: event.time,
        window: n,
        matched: window.is_some(),
        chains,
        protocol_frames,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_fx::AppOp;
    use fxnet_sim::{
        CausalEvent, CauseId, FrameKind, FrameMeta, FrameRecord, HostId, Proto, ProtoCause,
    };
    use fxnet_watch::EventKind;

    fn record(t_us: u64, len: u32, src: u32) -> FrameRecord {
        FrameRecord {
            time: SimTime::from_micros(t_us),
            wire_len: len,
            proto: Proto::Tcp,
            kind: FrameKind::Data,
            src: HostId(src),
            dst: HostId(src + 1),
        }
    }

    fn ev(rec: FrameRecord, cause: CauseId, seq: u64) -> CausalEvent {
        CausalEvent {
            record: rec,
            cause,
            retx: false,
            conn: 1,
            dir: 0,
            seq,
            meta: FrameMeta::default(),
        }
    }

    #[test]
    fn window_is_located_and_grouped_by_heaviest_contributor() {
        let map = TenantMap::pack([("honest".to_string(), 2), ("liar".to_string(), 2)]);
        let liar0 = CauseId::app(1, 2, 1, 0);
        let liar1 = CauseId::app(1, 2, 1, 1);
        let honest = CauseId::app(0, 0, 1, 0);
        let events = vec![
            ev(record(1, 500, 0), honest, 0),
            ev(record(2, 1518, 2), liar0, 0),
            ev(record(3, 1518, 2), liar1, 1460),
            ev(record(4, 58, 3), CauseId::protocol(ProtoCause::Ack), 0),
        ];
        let ops = vec![
            AppOp {
                cause: honest,
                dst: 1,
                time: SimTime::ZERO,
                payload_bytes: 442,
                wire_bytes: 442,
            },
            AppOp {
                cause: liar0,
                dst: 3,
                time: SimTime::ZERO,
                payload_bytes: 1460,
                wire_bytes: 1460,
            },
            AppOp {
                cause: liar1,
                dst: 3,
                time: SimTime::ZERO,
                payload_bytes: 1460,
                wire_bytes: 1460,
            },
        ];
        let run = CausalRun { ops, events };
        // Recorder holds the last three deliveries.
        let event = WatchEvent {
            kind: EventKind::ContractViolation,
            tenant: "liar".to_string(),
            time: SimTime::from_micros(4),
            check: "burst-volume".to_string(),
            measured: 2.0,
            limit: 1.0,
            detail: String::new(),
            flight_recorder: vec![record(2, 1518, 2), record(3, 1518, 2), record(4, 58, 3)],
        };
        let blame = blame_violation(&event, &run, &map);
        assert!(blame.matched);
        assert_eq!(blame.window, 3);
        assert_eq!(blame.protocol_frames, 1);
        let top = blame.top().expect("chains");
        assert_eq!(top.tenant, "liar");
        assert_eq!(top.rank, 2);
        assert_eq!(top.ops, 2);
        assert_eq!(top.frames, 2);
        assert_eq!(top.bytes, 2 * 1518);
    }

    #[test]
    fn foreign_recorder_does_not_match() {
        let map = TenantMap::pack([("t".to_string(), 1)]);
        let run = CausalRun {
            ops: vec![],
            events: vec![ev(record(1, 500, 0), CauseId::NONE, 0)],
        };
        let event = WatchEvent {
            kind: EventKind::ContractViolation,
            tenant: "t".to_string(),
            time: SimTime::ZERO,
            check: "mean-bandwidth".to_string(),
            measured: 2.0,
            limit: 1.0,
            detail: String::new(),
            flight_recorder: vec![record(99, 999, 5)],
        };
        let blame = blame_violation(&event, &run, &map);
        assert!(!blame.matched);
        assert!(blame.chains.is_empty());
    }
}
