//! # fxnet-harness
//!
//! A deterministic parallel experiment runner. Every experiment in this
//! repository is an independent, pure function of its configuration and
//! seed — a seed sweep, a processor-count ablation, the six measured
//! programs behind the paper's figures. That independence is exactly
//! what a worker pool wants, **provided** parallelism never leaks into
//! the results: the contract here is that fanning N jobs across a
//! [`Pool`] returns the same values in the same order as running them
//! one by one, byte for byte.
//!
//! Two invariants make that hold:
//!
//! 1. **Work is claimed by index, returned by index.** Workers pull the
//!    next job off a shared atomic counter and write the result into the
//!    slot of the job that produced it; [`Pool::map`] then hands back the
//!    slots in input order. Completion order — which *does* vary run to
//!    run — is unobservable.
//! 2. **Jobs do not share mutable state.** The pool gives a job nothing
//!    but its input; anything it touches beyond that is the job author's
//!    bug, not a scheduling artifact.
//!
//! [`Sweep`] layers keyed collection on top: results come back sorted by
//! an `Ord` key such as `(experiment, seed, p)`, so a sweep's report
//! reads identically no matter how the pool interleaved it.
//!
//! A panicking job does not hang the pool: remaining workers drain, and
//! the panic is re-raised on the caller's thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A fixed-width worker pool over OS threads.
///
/// The pool is a value, not a set of running threads: each [`Pool::map`]
/// call spawns scoped workers for its own duration, so a `Pool` can be
/// shared freely and costs nothing while idle.
#[derive(Debug, Clone)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool running `jobs` tasks at once. `jobs = 0` asks the OS for
    /// the available parallelism (falling back to 1); `jobs = 1` is the
    /// serial reference the parallel runs must match.
    pub fn new(jobs: usize) -> Pool {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            jobs
        };
        Pool { jobs }
    }

    /// The serial reference pool (one worker, no spawned threads).
    pub fn serial() -> Pool {
        Pool { jobs: 1 }
    }

    /// Number of concurrent workers.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Apply `f` to every item, in parallel, returning the results in
    /// **input order** regardless of completion order.
    ///
    /// With one worker (or one item) this degenerates to a plain serial
    /// map on the calling thread — the parallel path is guaranteed to
    /// return exactly what this path returns.
    ///
    /// If `f` panics for some item, the panic is re-raised here after
    /// the other workers finish their in-flight jobs.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let n = items.len();
        if self.jobs <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        // Each input sits in its own slot; a worker claims index i via
        // the shared counter, takes slot i, and deposits the result in
        // output slot i. No lock is held while `f` runs.
        let inputs: Vec<Mutex<Option<I>>> =
            items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let outputs: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let mut panicked: Option<Box<dyn std::any::Any + Send>> = None;
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..self.jobs.min(n))
                .map(|_| {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = inputs[i]
                            .lock()
                            .expect("input slot")
                            .take()
                            .expect("each index claimed once");
                        let out = f(item);
                        *outputs[i].lock().expect("output slot") = Some(out);
                    })
                })
                .collect();
            // Join explicitly so an `f` panic surfaces with its own
            // payload (scope's automatic join would replace it with
            // "a scoped thread panicked"). Remaining workers drain
            // their in-flight jobs first.
            for w in workers {
                if let Err(p) = w.join() {
                    panicked.get_or_insert(p);
                }
            }
        });
        if let Some(p) = panicked {
            std::panic::resume_unwind(p);
        }
        outputs
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("output slot")
                    .expect("every slot filled")
            })
            .collect()
    }

    /// A keyed sweep builder over this pool; see [`Sweep`].
    pub fn sweep<K: Ord + Send, T: Send>(&self) -> Sweep<'_, K, T> {
        Sweep {
            pool: self,
            jobs: Vec::new(),
        }
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new(0)
    }
}

/// A batch of keyed jobs whose results come back **sorted by key**.
///
/// The key — `(experiment, seed, config)` in the repro harness — pins
/// the output order to the job identity instead of the submission or
/// completion order, which is what lets a parallel sweep's report match
/// the serial one byte for byte.
pub struct Sweep<'p, K, T> {
    pool: &'p Pool,
    #[allow(clippy::type_complexity)]
    jobs: Vec<(K, Box<dyn FnOnce() -> T + Send + 'p>)>,
}

impl<'p, K: Ord + Send, T: Send> Sweep<'p, K, T> {
    /// Queue one job under `key`.
    pub fn add(mut self, key: K, job: impl FnOnce() -> T + Send + 'p) -> Self {
        self.jobs.push((key, Box::new(job)));
        self
    }

    /// Run every queued job on the pool and return `(key, result)`
    /// pairs sorted by key (ties keep submission order).
    pub fn run(self) -> Vec<(K, T)> {
        let pool = self.pool;
        let mut out: Vec<(K, T)> = pool.map(self.jobs, |(k, job)| (k, job()));
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Run `f` and return its result with the wall-clock time it took — the
/// one-liner behind every perf probe in the bench harness.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|i| i * i).collect();
        let got = pool.map(items, |i| i * i);
        assert_eq!(got, expect);
    }

    #[test]
    fn parallel_map_equals_serial_map() {
        let items: Vec<u64> = (0..64).collect();
        let serial = Pool::serial().map(items.clone(), |i| i.wrapping_mul(0x9E37_79B9) >> 7);
        let parallel = Pool::new(8).map(items, |i| i.wrapping_mul(0x9E37_79B9) >> 7);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn completion_order_is_unobservable() {
        // Earlier items sleep longer, so completion order is roughly the
        // reverse of input order — the output must not care.
        let pool = Pool::new(4);
        let items: Vec<u64> = (0..8).collect();
        let got = pool.map(items, |i| {
            std::thread::sleep(Duration::from_millis(2 * (8 - i)));
            i
        });
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        assert!(Pool::new(0).jobs() >= 1);
        assert_eq!(Pool::new(3).jobs(), 3);
        assert_eq!(Pool::serial().jobs(), 1);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::new(4);
        assert_eq!(pool.map(Vec::<u32>::new(), |i| i), Vec::<u32>::new());
        assert_eq!(pool.map(vec![7u32], |i| i + 1), vec![8]);
    }

    #[test]
    fn sweep_sorts_by_key_not_completion() {
        let pool = Pool::new(4);
        let mut sweep = pool.sweep::<(u32, u32), u32>();
        // Submit in scrambled order; keys restore it.
        for (p, seed) in [(8u32, 2u32), (2, 1), (4, 2), (2, 2), (8, 1), (4, 1)] {
            sweep = sweep.add((p, seed), move || p * 100 + seed);
        }
        let got = sweep.run();
        let keys: Vec<(u32, u32)> = got.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![(2, 1), (2, 2), (4, 1), (4, 2), (8, 1), (8, 2)]);
        assert!(got.iter().all(|((p, s), v)| *v == p * 100 + s));
    }

    #[test]
    #[should_panic(expected = "job 3 failed")]
    fn worker_panic_propagates_to_caller() {
        let pool = Pool::new(2);
        pool.map((0..8).collect::<Vec<u32>>(), |i| {
            if i == 3 {
                panic!("job 3 failed");
            }
            i
        });
    }
}
