//! # fxnet-shard
//!
//! The conservative sharded parallel DES core: one [`TopologySpec`]
//! split by a [`Partition`] into scoped [`CompositeFabric`] shards, each
//! owning the segments, switch ports, and calendar queue of its node
//! block, exchanging frames that cross cut trunks as
//! [`CrossFrame`]s.
//!
//! Two execution modes share the same shards:
//!
//! * **Cooperative pull** ([`ShardedFabric::advance`]) — the protocol
//!   stack's driver: single-threaded, one event per call, always
//!   advancing the shard whose next [`EventKey`] is globally minimal and
//!   routing crossings immediately. TCP feedback makes every delivery a
//!   potential synchronization point, so the engine path stays
//!   cooperative — what sharding buys it is the *order proof*: because
//!   every shard orders events by the explicit key, the merged stream
//!   (deliveries, trace, taps, errors) is byte-identical at any shard
//!   count, including one.
//! * **Threaded drain** ([`ShardedFabric::drain_parallel`]) — batch
//!   workloads without delivery-time feedback (the `shard-bench` leg,
//!   fabric soak tests): one worker thread per shard, bounded SPSC
//!   rings per directed cut-trunk channel, and a null-message /
//!   lower-bound-timestamp protocol. Each channel carries a published
//!   LBTS — the sender's clock lower bound plus the channel's
//!   conservative lookahead (minimum-frame wire time plus trunk
//!   propagation plus the far node's store-and-forward latency, all
//!   strictly positive) — and
//!   a shard only processes events strictly below the minimum LBTS of
//!   its incoming channels. Idle trunks keep advancing their LBTS (the
//!   null message), so no shard ever blocks on a quiet neighbor.
//!   Deliveries are tagged with their event key and merged afterwards:
//!   the result equals the pull-mode (and sequential) order exactly.

use fxnet_sim::ethernet::Delivery;
use fxnet_sim::{
    ring, EtherConfig, EtherStats, EventKey, Frame, FrameRecord, FrameTap, LinkStats, NicId,
    RingReceiver, RingSender, SimTime, TxError,
};
use fxnet_topo::{CompositeFabric, CrossFrame, NodeFlow, NodeKind, Partition, TopologySpec};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bounded capacity of each inter-shard ring. A full ring backpressures
/// the producer (it yields and retries), so memory stays bounded even
/// when one shard runs far ahead of a neighbor.
const RING_CAPACITY: usize = 1024;

/// Outcome of a threaded drain: the merged deliveries plus the
/// protocol's health counters.
#[derive(Debug)]
pub struct DrainOutcome {
    /// All final deliveries, merged into global [`EventKey`] order —
    /// byte-identical to the sequential event loop's output.
    pub deliveries: Vec<Delivery>,
    /// Fabric events processed across all shards.
    pub events: u64,
    /// Causality violations observed at injection (a frame arriving
    /// before the receiving shard's clock). Always zero when the
    /// lookahead is sound; tests assert it.
    pub violations: u64,
    /// Outer protocol rounds that processed no event (null-message-only
    /// rounds: the shard re-published its LBTS and yielded).
    pub null_rounds: u64,
}

struct WorkerOutcome {
    tagged: Vec<(EventKey, u32, Delivery)>,
    events: u64,
    violations: u64,
    null_rounds: u64,
}

/// A partitioned [`CompositeFabric`] behind the same pull interface,
/// plus the threaded drain mode.
pub struct ShardedFabric {
    spec: TopologySpec,
    partition: Partition,
    shards: Vec<CompositeFabric>,
    /// Global fabric-entry stamp counter — one sequence across all
    /// shards, in driver enqueue order, exactly as the sequential fabric
    /// would assign.
    next_stamp: u64,
    /// Frames currently inside the fabric (enqueued, not yet delivered
    /// or errored) — the drain-mode termination counter.
    live: u64,
    promiscuous: bool,
    tap: Option<FrameTap>,
    trace: Vec<FrameRecord>,
    errors: Vec<(SimTime, Frame, TxError)>,
    errors_seen: Vec<usize>,
    crossings: Vec<CrossFrame>,
    violations: u64,
    events_processed: u64,
}

impl ShardedFabric {
    /// Compile `spec` into at most `shards` scoped shards (clamped by
    /// the partitioner). Every shard holds the full compiled topology —
    /// identical NIC layout and per-segment RNG streams — but only
    /// *owns* (and ever drives) the nodes of its block, so per-bus
    /// behavior is bit-identical to the sequential fabric's.
    pub fn new(spec: TopologySpec, ether: &EtherConfig, seed: u64, shards: usize) -> ShardedFabric {
        let partition = Partition::new(&spec, shards);
        let built: Vec<CompositeFabric> = (0..partition.shards)
            .map(|s| {
                let mut fab = CompositeFabric::new(spec.clone(), ether, seed);
                fab.set_scope(partition.owned_mask(s));
                fab
            })
            .collect();
        let n = built.len();
        ShardedFabric {
            spec,
            partition,
            shards: built,
            next_stamp: 0,
            live: 0,
            promiscuous: false,
            tap: None,
            trace: Vec::new(),
            errors: Vec::new(),
            errors_seen: vec![0; n],
            crossings: Vec::new(),
            violations: 0,
            events_processed: 0,
        }
    }

    /// The compiled spec.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// The node/host/trunk partition in effect.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Actual shard count after clamping.
    pub fn shard_count(&self) -> usize {
        self.partition.shards
    }

    /// Number of hosts on the LAN.
    pub fn host_count(&self) -> usize {
        self.spec.host_count()
    }

    /// Causality violations observed so far (pull mode). Always zero —
    /// crossings arrive strictly in the receiving shard's future.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Fabric events processed so far (pull mode).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    fn shard_promiscuous(&self) -> bool {
        self.promiscuous || self.tap.is_some()
    }

    /// Enable the merged promiscuous capture.
    pub fn set_promiscuous(&mut self, on: bool) {
        self.promiscuous = on;
        let per_shard = self.shard_promiscuous();
        for s in &mut self.shards {
            s.set_promiscuous(per_shard);
        }
    }

    /// Install (or remove) a live frame tap at the merged capture point.
    /// The tap observes records in global event order, exactly as the
    /// sequential fabric's tap would.
    pub fn set_tap(&mut self, tap: Option<FrameTap>) {
        self.tap = tap;
        let per_shard = self.shard_promiscuous();
        for s in &mut self.shards {
            s.set_promiscuous(per_shard);
        }
    }

    /// Merged captured trace so far.
    pub fn trace(&self) -> &[FrameRecord] {
        &self.trace
    }

    /// Take ownership of the merged captured trace.
    pub fn take_trace(&mut self) -> Vec<FrameRecord> {
        std::mem::take(&mut self.trace)
    }

    /// Merged surfaced errors, in global event order, original tokens
    /// restored.
    pub fn errors(&self) -> &[(SimTime, Frame, TxError)] {
        &self.errors
    }

    /// Aggregate MAC statistics summed across shards (non-owned elements
    /// stay idle, so the sum equals the sequential fabric's).
    pub fn stats(&self) -> EtherStats {
        let mut total = EtherStats::default();
        for s in &self.shards {
            let st = s.stats();
            total.frames_delivered += st.frames_delivered;
            total.bytes_delivered += st.bytes_delivered;
            total.collisions += st.collisions;
            total.backoffs += st.backoffs;
            total.frames_dropped += st.frames_dropped;
            total.busy_ns += st.busy_ns;
        }
        total
    }

    /// Per-node flow counters, summed across shards (each node's counts
    /// accumulate only on its owner).
    pub fn flows(&self) -> Vec<NodeFlow> {
        let mut merged = vec![NodeFlow::default(); self.spec.nodes.len()];
        for s in &self.shards {
            for (m, f) in merged.iter_mut().zip(s.flows()) {
                m.frames_in += f.frames_in;
                m.bytes_in += f.bytes_in;
                m.frames_out += f.frames_out;
                m.bytes_out += f.bytes_out;
            }
        }
        merged
    }

    /// Enable or disable passive per-link sampling on every shard.
    pub fn set_link_sampling(&mut self, bin_ns: Option<u64>) {
        for s in &mut self.shards {
            s.set_link_sampling(bin_ns);
        }
    }

    /// Merged per-link sample series: every label is taken from the
    /// shard responsible for it (the owner of the sending end of a trunk
    /// direction, of a segment, of a host's attachment node), so the
    /// merged stats equal the sequential fabric's.
    pub fn take_link_stats(&mut self) -> Option<LinkStats> {
        let per_shard: Vec<LinkStats> = self
            .shards
            .iter_mut()
            .map(CompositeFabric::take_link_stats)
            .collect::<Option<Vec<_>>>()?;
        // Responsibility list, in the fixed label order of
        // `CompositeFabric::take_link_stats`: trunk fwd/rev pairs, then
        // segments, then switch/router host ports (up and down).
        let mut resp = Vec::new();
        for t in &self.spec.trunks {
            resp.push(self.partition.node_shard[t.a]);
            resp.push(self.partition.node_shard[t.b]);
        }
        for (i, node) in self.spec.nodes.iter().enumerate() {
            if node.kind == NodeKind::Segment {
                resp.push(self.partition.node_shard[i]);
            }
        }
        for &node in &self.spec.attachments {
            if self.spec.nodes[node].kind != NodeKind::Segment {
                resp.push(self.partition.node_shard[node]);
                resp.push(self.partition.node_shard[node]);
            }
        }
        let bin_ns = per_shard[0].bin_ns;
        let mut columns: Vec<Vec<Option<(String, fxnet_sim::LinkSeries)>>> = per_shard
            .into_iter()
            .map(|s| s.links.into_iter().map(Some).collect())
            .collect();
        debug_assert!(columns.iter().all(|c| c.len() == resp.len()));
        let links = resp
            .iter()
            .enumerate()
            .map(|(j, &owner)| columns[owner][j].take().expect("label present"))
            .collect();
        Some(LinkStats { bin_ns, links })
    }

    /// Queue a frame from host `nic.0` at time `now`, assigning the next
    /// global fabric-entry stamp and routing to the owner shard.
    pub fn enqueue(&mut self, nic: NicId, frame: Frame, now: SimTime) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let s = self.partition.host_shard[nic.0 as usize];
        self.shards[s].enqueue_stamped(nic, frame, now, stamp);
        self.live += 1;
    }

    /// Whether nothing is pending on any shard.
    pub fn idle(&self) -> bool {
        self.shards.iter().all(CompositeFabric::idle)
    }

    /// Time of the next fabric event across all shards.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.next_shard().map(|(k, _)| k.time)
    }

    fn next_shard(&self) -> Option<(EventKey, usize)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.next_key().map(|k| (k, i)))
            .min()
    }

    /// Process exactly one fabric event — the globally minimal key across
    /// shards — then route any crossings, harvest new trace records
    /// through the merged tap/trace, and harvest surfaced errors. The
    /// resulting streams are byte-identical at every shard count.
    pub fn advance(&mut self, out: &mut Vec<Delivery>) -> Option<SimTime> {
        let (key, s) = self.next_shard()?;
        let before = out.len();
        self.shards[s].advance_keyed(out);
        self.events_processed += 1;
        let delivered = (out.len() - before) as u64;
        // Crossings: inject into their target shards right away, before
        // any later event can be processed there.
        let mut crossings = std::mem::take(&mut self.crossings);
        self.shards[s].drain_outbox(&mut crossings);
        for cf in crossings.drain(..) {
            let target = self.partition.node_shard[cf.node()];
            if cf.arrival() < self.shards[target].clock() {
                self.violations += 1;
            }
            self.shards[target].inject(cf);
        }
        self.crossings = crossings;
        // Trace/tap: the advanced shard captured any deliveries locally;
        // replay them through the merged capture point in event order.
        if !self.shards[s].trace().is_empty() {
            for r in self.shards[s].take_trace() {
                if let Some(tap) = &mut self.tap {
                    tap(&r);
                }
                if self.promiscuous {
                    self.trace.push(r);
                }
            }
        }
        // Errors: harvest what this shard surfaced during the event.
        let errs = self.shards[s].errors();
        let new_err = errs.len() - self.errors_seen[s];
        if new_err > 0 {
            self.errors.extend_from_slice(&errs[self.errors_seen[s]..]);
            self.errors_seen[s] = errs.len();
        }
        self.live = self.live.saturating_sub(delivered + new_err as u64);
        Some(key.time)
    }

    /// Drain every pending event cooperatively (test helper).
    pub fn run_to_idle(&mut self) -> Vec<Delivery> {
        let mut out = Vec::new();
        while self.advance(&mut out).is_some() {}
        out
    }

    /// Drain every pending event with one worker thread per shard under
    /// the conservative null-message protocol, and merge the deliveries
    /// into global event order. Requires a tap- and capture-free fabric
    /// (batch mode: there is no single-threaded observer to replay
    /// through).
    pub fn drain_parallel(&mut self) -> DrainOutcome {
        assert!(
            self.tap.is_none() && !self.promiscuous,
            "drain mode is for batch (tap- and capture-free) workloads"
        );
        let n = self.partition.shards;
        if n <= 1 {
            // One shard: the protocol degenerates to the sequential loop.
            let fab = &mut self.shards[0];
            let mut out = Vec::new();
            let mut tagged = Vec::new();
            let mut events = 0u64;
            while let Some(key) = fab.advance_keyed(&mut out) {
                events += 1;
                for (i, d) in out.drain(..).enumerate() {
                    tagged.push((key, i as u32, d));
                }
            }
            self.events_processed += events;
            self.live = 0;
            self.harvest_errors_after_drain();
            return DrainOutcome {
                deliveries: tagged.into_iter().map(|(_, _, d)| d).collect(),
                events,
                violations: 0,
                null_rounds: 0,
            };
        }

        // One bounded SPSC ring and one LBTS cell per directed channel.
        let channels = &self.partition.channels;
        let mut chan_tx: Vec<Option<RingSender<CrossFrame>>> = Vec::new();
        let mut chan_rx: Vec<Option<RingReceiver<CrossFrame>>> = Vec::new();
        for _ in channels {
            let (tx, rx) = ring(RING_CAPACITY);
            chan_tx.push(Some(tx));
            chan_rx.push(Some(rx));
        }
        let mut outgoing: Vec<Vec<(usize, RingSender<CrossFrame>)>> =
            (0..n).map(|_| Vec::new()).collect();
        let mut incoming: Vec<Vec<(usize, RingReceiver<CrossFrame>)>> =
            (0..n).map(|_| Vec::new()).collect();
        for (c, ch) in channels.iter().enumerate() {
            outgoing[ch.from].push((c, chan_tx[c].take().expect("one sender per channel")));
            incoming[ch.to].push((c, chan_rx[c].take().expect("one receiver per channel")));
        }
        // channel_of[trunk][dir] → channel index, for outbox routing.
        let mut channel_of = vec![[usize::MAX; 2]; self.spec.trunks.len()];
        for (c, ch) in channels.iter().enumerate() {
            channel_of[ch.trunk][ch.dir] = c;
        }
        let lookahead_ns: Vec<u64> = channels.iter().map(|c| c.lookahead.as_nanos()).collect();
        let lbts: Vec<AtomicU64> = lookahead_ns.iter().map(|&l| AtomicU64::new(l)).collect();
        let live = AtomicU64::new(self.live);

        let lbts_ref = &lbts;
        let live_ref = &live;
        let channel_of_ref = &channel_of;
        let lookahead_ref = &lookahead_ns;
        let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(incoming)
                .zip(outgoing)
                .map(|((fab, rx), tx)| {
                    scope.spawn(move || {
                        drain_worker(
                            fab,
                            rx,
                            tx,
                            lbts_ref,
                            live_ref,
                            channel_of_ref,
                            lookahead_ref,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });

        self.live = live.load(Ordering::Acquire);
        self.harvest_errors_after_drain();
        let mut events = 0;
        let mut violations = 0;
        let mut null_rounds = 0;
        let mut tagged = Vec::new();
        for mut o in outcomes {
            events += o.events;
            violations += o.violations;
            null_rounds += o.null_rounds;
            tagged.append(&mut o.tagged);
        }
        self.events_processed += events;
        self.violations += violations;
        tagged.sort_by_key(|a| (a.0, a.1));
        DrainOutcome {
            deliveries: tagged.into_iter().map(|(_, _, d)| d).collect(),
            events,
            violations,
            null_rounds,
        }
    }

    /// After a drain, fold each shard's newly surfaced errors into the
    /// merged list, ordered by time (the per-event harvest order is not
    /// observable in batch mode).
    fn harvest_errors_after_drain(&mut self) {
        let mut fresh: Vec<(SimTime, Frame, TxError)> = Vec::new();
        for (s, fab) in self.shards.iter().enumerate() {
            let errs = fab.errors();
            fresh.extend_from_slice(&errs[self.errors_seen[s]..]);
            self.errors_seen[s] = errs.len();
        }
        fresh.sort_by_key(|&(t, f, _)| (t, f.token));
        self.errors.append(&mut fresh);
    }
}

/// One shard's drain loop: drain rings → process below the incoming
/// horizon → publish LBTS (the null message) → repeat until the global
/// live-frame counter hits zero and the shard is idle.
fn drain_worker(
    fab: &mut CompositeFabric,
    rx: Vec<(usize, RingReceiver<CrossFrame>)>,
    tx: Vec<(usize, RingSender<CrossFrame>)>,
    lbts: &[AtomicU64],
    live: &AtomicU64,
    channel_of: &[[usize; 2]],
    lookahead_ns: &[u64],
) -> WorkerOutcome {
    let mut out: Vec<Delivery> = Vec::new();
    let mut crossings: Vec<CrossFrame> = Vec::new();
    let mut tagged = Vec::new();
    let mut events = 0u64;
    let mut violations = 0u64;
    let mut null_rounds = 0u64;
    let mut errors_seen = fab.errors().len();
    loop {
        // Read the horizon before draining: anything pushed after this
        // read arrives at or beyond it, so processing strictly below the
        // horizon is safe.
        let horizon = rx
            .iter()
            .map(|(c, _)| lbts[*c].load(Ordering::Acquire))
            .min()
            .unwrap_or(u64::MAX);
        for (_, r) in &rx {
            while let Some(cf) = r.try_pop() {
                if cf.arrival() < fab.clock() {
                    violations += 1;
                }
                fab.inject(cf);
            }
        }
        let free_run = live.load(Ordering::Acquire) == 0;
        let mut progressed = false;
        while let Some(k) = fab.next_key() {
            if !free_run && k.time.as_nanos() >= horizon {
                break;
            }
            let key = fab.advance_keyed(&mut out).expect("peeked event");
            events += 1;
            progressed = true;
            let mut done = out.len() as u64;
            for (i, d) in out.drain(..).enumerate() {
                tagged.push((key, i as u32, d));
            }
            let errs = fab.errors().len();
            done += (errs - errors_seen) as u64;
            errors_seen = errs;
            if done > 0 {
                live.fetch_sub(done, Ordering::AcqRel);
            }
            fab.drain_outbox(&mut crossings);
            for cf in crossings.drain(..) {
                let c = channel_of[cf.trunk()][cf.dir()];
                let (_, sender) = tx.iter().find(|(ci, _)| *ci == c).expect("owned channel");
                let mut pending = cf;
                loop {
                    match sender.try_push(pending) {
                        Ok(()) => break,
                        Err(back) => {
                            pending = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        }
        // Publish the null message: future sends on each outgoing channel
        // happen no earlier than our clock lower bound (next local event,
        // or the earliest possible future injection) plus the channel's
        // lookahead. LBTS is monotone, so stale readers stay safe.
        let next_local = fab
            .next_key()
            .map(|k| k.time.as_nanos())
            .unwrap_or(u64::MAX);
        let clock_lb = next_local.min(horizon);
        for (c, _) in &tx {
            let bound = clock_lb.saturating_add(lookahead_ns[*c]);
            lbts[*c].fetch_max(bound, Ordering::AcqRel);
        }
        if live.load(Ordering::Acquire) == 0 && fab.idle() && rx.iter().all(|(_, r)| r.is_empty()) {
            break;
        }
        if !progressed {
            null_rounds += 1;
            std::thread::yield_now();
        }
    }
    WorkerOutcome {
        tagged,
        events,
        violations,
        null_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxnet_sim::{FrameKind, HostId, RATE_10M};
    use proptest::prelude::*;

    fn tcp(src: u32, dst: u32, payload: u32, token: u64) -> Frame {
        Frame::tcp(HostId(src), HostId(dst), FrameKind::Data, payload, token)
    }

    fn specs() -> Vec<TopologySpec> {
        vec![
            TopologySpec::single_segment(4, RATE_10M),
            TopologySpec::two_switches_trunk(4, RATE_10M),
            TopologySpec::two_level_tree(4, RATE_10M),
            TopologySpec::routed_two_subnets(4, RATE_10M),
        ]
    }

    /// Drive an all-pairs burst load through whatever `enqueue` is given.
    fn offer(mut enqueue: impl FnMut(NicId, Frame, SimTime), hosts: u32, frames: u32) {
        for i in 0..frames {
            let src = i % hosts;
            let dst = (i + 1 + (i / hosts)) % hosts;
            let dst = if dst == src { (dst + 1) % hosts } else { dst };
            let f = tcp(src, dst, 120 + (i * 97) % 900, u64::from(i) + 1);
            let t = SimTime::from_micros(u64::from(i / hosts) * 450);
            enqueue(NicId(src), f, t);
        }
    }

    /// The headline invariant: the sharded pull loop reproduces the
    /// sequential fabric byte for byte — deliveries, promiscuous trace,
    /// MAC statistics, and per-node flows — at shard counts 1..4, on
    /// every sweep topology.
    #[test]
    fn pull_mode_matches_sequential_exactly() {
        let ether = EtherConfig::default();
        for spec in specs() {
            let mut seq = CompositeFabric::new(spec.clone(), &ether, 11);
            seq.set_promiscuous(true);
            offer(|nic, f, t| seq.enqueue(nic, f, t), 4, 32);
            let want = seq.run_to_idle();
            for shards in 1..=4usize {
                let mut fab = ShardedFabric::new(spec.clone(), &ether, 11, shards);
                fab.set_promiscuous(true);
                offer(|nic, f, t| fab.enqueue(nic, f, t), 4, 32);
                let got = fab.run_to_idle();
                let label = format!("{} @ {shards} shards", spec.label());
                assert_eq!(got.len(), want.len(), "{label}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.time, w.time, "{label}");
                    assert_eq!(g.frame, w.frame, "{label}");
                    assert_eq!(g.meta, w.meta, "{label}");
                }
                assert_eq!(fab.trace(), seq.trace(), "{label}");
                assert_eq!(fab.stats(), seq.stats(), "{label}");
                assert_eq!(fab.flows(), seq.flows(), "{label}");
                assert_eq!(fab.violations(), 0, "{label}");
                assert!(fab.idle(), "{label}");
            }
        }
    }

    /// The threaded drain merges to exactly the pull-mode (= sequential)
    /// delivery stream, with zero causality violations.
    #[test]
    fn drain_parallel_matches_pull_mode() {
        let ether = EtherConfig::default();
        for spec in specs() {
            for shards in [1usize, 2, 4] {
                let mut pull = ShardedFabric::new(spec.clone(), &ether, 23, shards);
                offer(|nic, f, t| pull.enqueue(nic, f, t), 4, 40);
                let want = pull.run_to_idle();
                let mut par = ShardedFabric::new(spec.clone(), &ether, 23, shards);
                offer(|nic, f, t| par.enqueue(nic, f, t), 4, 40);
                let outcome = par.drain_parallel();
                let label = format!("{} @ {shards} shards", spec.label());
                assert_eq!(outcome.violations, 0, "{label}");
                assert_eq!(outcome.deliveries.len(), want.len(), "{label}");
                for (g, w) in outcome.deliveries.iter().zip(&want) {
                    assert_eq!(g.time, w.time, "{label}");
                    assert_eq!(g.frame, w.frame, "{label}");
                    assert_eq!(g.meta, w.meta, "{label}");
                }
                assert_eq!(par.stats(), pull.stats(), "{label}");
                assert_eq!(par.errors(), pull.errors(), "{label}");
                assert!(par.idle(), "{label}");
            }
        }
    }

    /// Thread scheduling must not leak into the result: repeated
    /// threaded drains of the same offered load are identical.
    #[test]
    fn drain_parallel_is_deterministic_across_runs() {
        let ether = EtherConfig::default();
        let spec = TopologySpec::two_level_tree(4, RATE_10M);
        let mut runs = Vec::new();
        for _ in 0..3 {
            let mut fab = ShardedFabric::new(spec.clone(), &ether, 5, 3);
            offer(|nic, f, t| fab.enqueue(nic, f, t), 4, 60);
            let out = fab.drain_parallel();
            assert_eq!(out.violations, 0);
            runs.push(
                out.deliveries
                    .iter()
                    .map(|d| (d.time, d.frame, d.meta))
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    /// Merged link-sample series equal the sequential fabric's, label
    /// for label and bin for bin.
    #[test]
    fn link_stats_merge_matches_sequential() {
        let ether = EtherConfig::default();
        let spec = TopologySpec::two_switches_trunk(4, RATE_10M);
        let mut seq = CompositeFabric::new(spec.clone(), &ether, 9);
        seq.set_link_sampling(Some(1_000_000));
        offer(|nic, f, t| seq.enqueue(nic, f, t), 4, 36);
        seq.run_to_idle();
        let want = seq.take_link_stats().expect("sampling enabled");
        let mut fab = ShardedFabric::new(spec, &ether, 9, 2);
        fab.set_link_sampling(Some(1_000_000));
        offer(|nic, f, t| fab.enqueue(nic, f, t), 4, 36);
        fab.run_to_idle();
        let got = fab.take_link_stats().expect("sampling enabled");
        assert_eq!(got.bin_ns, want.bin_ns);
        assert_eq!(got.links.len(), want.links.len());
        for ((gl, gs), (wl, ws)) in got.links.iter().zip(&want.links) {
            assert_eq!(gl, wl);
            assert_eq!(gs, ws, "{gl}");
        }
    }

    /// A tap on the sharded fabric observes the same records, in the
    /// same order, as a tap on the sequential fabric.
    #[test]
    fn tap_order_matches_sequential() {
        use std::sync::{Arc, Mutex};
        let ether = EtherConfig::default();
        let spec = TopologySpec::two_level_tree(4, RATE_10M);
        let capture = |shards: Option<usize>| {
            let seen = Arc::new(Mutex::new(Vec::new()));
            let sink = Arc::clone(&seen);
            let tap: FrameTap = Box::new(move |r| sink.lock().unwrap().push(*r));
            match shards {
                None => {
                    let mut fab = CompositeFabric::new(spec.clone(), &ether, 3);
                    fab.set_promiscuous(true);
                    offer(|nic, f, t| fab.enqueue(nic, f, t), 4, 24);
                    let mut out = Vec::new();
                    let mut tap = tap;
                    while fab.advance(&mut out).is_some() {
                        for r in fab.take_trace() {
                            tap(&r);
                        }
                    }
                }
                Some(n) => {
                    let mut fab = ShardedFabric::new(spec.clone(), &ether, 3, n);
                    fab.set_tap(Some(tap));
                    offer(|nic, f, t| fab.enqueue(nic, f, t), 4, 24);
                    fab.run_to_idle();
                }
            }
            let records = seen.lock().unwrap().clone();
            records
        };
        let want = capture(None);
        assert!(!want.is_empty());
        for n in [1usize, 2, 3] {
            assert_eq!(capture(Some(n)), want, "{n} shards");
        }
    }

    proptest! {
        /// The conservative lookahead never admits a frame earlier than
        /// the receiving shard's local clock: zero violations for random
        /// offered loads on every multi-segment topology, pull and
        /// threaded alike.
        #[test]
        fn lookahead_never_violates_causality(
            seed in 0u64..1_000,
            frames in 1u32..48,
            shards in 1usize..5,
        ) {
            let ether = EtherConfig::default();
            for spec in [
                TopologySpec::two_switches_trunk(4, RATE_10M),
                TopologySpec::two_level_tree(4, RATE_10M),
            ] {
                let mut fab = ShardedFabric::new(spec.clone(), &ether, seed, shards);
                offer(|nic, f, t| fab.enqueue(nic, f, t), 4, frames);
                fab.run_to_idle();
                prop_assert_eq!(fab.violations(), 0);
                let mut par = ShardedFabric::new(spec, &ether, seed, shards);
                offer(|nic, f, t| par.enqueue(nic, f, t), 4, frames);
                let out = par.drain_parallel();
                prop_assert_eq!(out.violations, 0);
            }
        }
    }
}
