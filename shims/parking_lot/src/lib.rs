//! Offline shim for `parking_lot`: non-poisoning [`Mutex`] and [`RwLock`]
//! wrappers over `std::sync`. A poisoned std lock (panicked holder) is
//! recovered transparently, matching parking_lot's semantics.

use std::sync;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
