//! Offline shim for the `crossbeam` crate: just `crossbeam::channel`
//! with unbounded MPSC channels, implemented over `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam, Debug does not require `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx2.send(7).unwrap();
        });
        tx.send(3).unwrap();
        let a = rx.recv().unwrap();
        let b = rx.recv().unwrap();
        assert_eq!(a + b, 10);
        h.join().unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }
}
