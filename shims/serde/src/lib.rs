//! Offline shim for `serde`.
//!
//! Instead of upstream serde's visitor architecture, this shim models
//! serialization as conversion to and from a JSON [`Value`] tree:
//!
//! * [`Serialize`] — `fn to_value(&self) -> Value`
//! * [`Deserialize`] — `fn from_value(&Value) -> Result<Self, Error>`
//!
//! plus a [`json`] module that renders a `Value` to JSON text (compact or
//! pretty) and parses JSON text back. The derive macros re-exported from
//! `serde_derive` generate these impls for named-field structs, newtype
//! structs, and unit-variant enums — the shapes this workspace uses.
//!
//! Object key order is preserved as written by the serializer, and every
//! derive emits fields in declaration order, so serialized output is fully
//! deterministic — a property the telemetry determinism tests rely on.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected, and where.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    pub message: String,
}

impl Error {
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        Error::new(format!("expected {what}, got {got:?}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialize error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ----

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::expected(stringify!($t), v))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::expected(stringify!($t), v))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| Error::expected("f32", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(String::from)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

pub mod json;
