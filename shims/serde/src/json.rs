//! JSON text rendering and parsing for [`Value`](crate::Value) trees.
//!
//! Rendering is deterministic: object key order is preserved, integers
//! print exactly, and floats use Rust's shortest-roundtrip formatting.
//! Non-finite floats render as `null` (as `serde_json` does).

use crate::{Deserialize, Error, Serialize, Value};

/// Render compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    out
}

/// Render human-readable JSON with 2-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out
}

/// Parse JSON text into a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Parse JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Ensure floats stay recognizably floats on re-parse.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_word(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{word}' at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_word("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_word("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_word("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("bad number '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("bad number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("bad number '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("sor \"quoted\"".into())),
            ("frames".into(), Value::U64(42)),
            ("delta".into(), Value::I64(-7)),
            ("bw".into(), Value::F64(1.5e6)),
            (
                "spans".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("empty".into(), Value::Object(vec![])),
        ]);
        for text in [to_string(&v), to_string_pretty(&v)] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&Value::F64(2.0));
        assert_eq!(text, "2.0");
        assert_eq!(parse(&text).unwrap(), Value::F64(2.0));
    }
}
