//! Offline shim for `criterion` (0.5 API subset).
//!
//! A minimal wall-clock benchmark harness: each `bench_function` runs a
//! short warm-up, then measures a handful of samples and prints the mean
//! and min iteration time. No statistics beyond that, no HTML reports —
//! just enough to keep `[[bench]]` targets building and producing useful
//! numbers offline.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Measures one benchmark body.
pub struct Bencher {
    /// Iterations per measured sample.
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            samples: Vec::new(),
        }
    }

    /// Time `f`, called `iters` times per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.samples.push(start.elapsed());
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total);
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up / calibration pass with a single iteration.
    let mut calib = Bencher::new(1);
    f(&mut calib);
    let once = calib
        .samples
        .first()
        .copied()
        .unwrap_or(Duration::ZERO)
        .max(Duration::from_nanos(1));
    // Aim for ~20ms of work per sample, capped to keep long benches quick.
    let iters = (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 1000) as u64;

    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut measured = 0u64;
    for _ in 0..samples {
        let mut b = Bencher::new(iters);
        f(&mut b);
        for s in &b.samples {
            let per_iter = *s / (iters as u32);
            total += per_iter;
            min = min.min(per_iter);
            measured += 1;
        }
        if total > Duration::from_millis(200) {
            break;
        }
    }
    if measured == 0 {
        println!("bench {name:<40} (no samples)");
        return;
    }
    let mean = total / (measured as u32);
    println!(
        "bench {name:<40} mean {:>12.3?}  min {:>12.3?}  ({measured} samples x {iters} iters)",
        mean, min
    );
}

/// Top-level benchmark driver (stands in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 5 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 5,
        }
    }
}

/// A named group of benchmarks with its own sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires >= 10; the shim just bounds it to stay quick.
        self.sample_size = n.clamp(1, 20);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// `criterion_group!(name, target...)` — defines `fn name()` running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// `criterion_main!(group...)` — defines `fn main()` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        c.bench_function("add", |b| b.iter(|| 1u64 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
