//! Offline shim for the `bytes` crate (1.x API subset).
//!
//! [`Bytes`] is an immutable, cheaply clonable byte buffer (backed by
//! `Arc<[u8]>` plus a range, so `clone` and `slice` are O(1) like the real
//! crate); [`BytesMut`] is a growable buffer backed by `Vec<u8>`. Only the
//! methods this workspace uses are provided.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn resolve(&self, range: impl RangeBounds<usize>) -> (usize, usize) {
        use std::ops::Bound::*;
        let lo = match range.start_bound() {
            Included(&n) => n,
            Excluded(&n) => n + 1,
            Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Included(&n) => n + 1,
            Excluded(&n) => n,
            Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        (lo, hi)
    }

    /// O(1) sub-slice sharing the same backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let (lo, hi) = self.resolve(range);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter().take(32) {
            write!(f, "{:02x}", b)?;
        }
        if self.len() > 32 {
            write!(f, "…({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(n: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(n),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Split off and return the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.buf.len(), "split_to out of bounds");
        let rest = self.buf.split_off(at);
        let head = std::mem::replace(&mut self.buf, rest);
        BytesMut { buf: head }
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { buf: v }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

/// Little-endian append operations (`bytes::BufMut` subset).
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_slice() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_i32_le(-7);
        b.extend_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 11);
        let head = b.split_to(4);
        assert_eq!(&head[..], &0xDEAD_BEEFu32.to_le_bytes());
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 7);
        let tail = frozen.slice(4..);
        assert_eq!(&tail[..], &[1, 2, 3]);
        assert_eq!(tail, Bytes::from(vec![1, 2, 3]));
    }
}
