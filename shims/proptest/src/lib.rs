//! Offline shim for `proptest` (1.x API subset).
//!
//! A deterministic mini property-testing runner: each `#[test]` inside a
//! [`proptest!`] block runs `ProptestConfig::cases` generated cases. Case
//! inputs derive from a splitmix64 stream seeded by the test's name and
//! the case index, so failures reproduce exactly across runs — there is
//! no shrinking, the failing inputs are printed instead.
//!
//! Supported strategy surface (what this workspace uses): integer and
//! float ranges, tuples of strategies, [`collection::vec`], and
//! [`any`] for primitives.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u128) - (self.start as u128);
                    self.start + ((rng.next_u64() as u128 % width) as $t)
                }
            }
        )*};
    }
    uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! sint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
                }
            }
        )*};
    }
    sint_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let u = rng.unit_f64();
            let v = self.start + u * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            ((self.start as f64)..(self.end as f64)).generate(rng) as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $S:ident),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }

    /// Strategy for "any value" of a primitive type; see [`crate::any`].
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: core::marker::PhantomData,
            }
        }
    }

    macro_rules! any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning many magnitudes.
            let mag = rng.unit_f64() * 80.0 - 40.0; // exponent in [-40, 40)
            let mantissa = rng.unit_f64() * 2.0 - 1.0;
            mantissa * mag.exp2()
        }
    }

    impl Strategy for Any<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            Any::<f64>::default().generate(rng) as f32
        }
    }
}

/// Strategy for any value of `T` (primitives only in this shim).
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any::default()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `prop::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is meaningful in the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic splitmix64 stream for one test case.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derive the RNG for `(test name, case index)` — stable across runs.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The proptest entry macro: wraps `#[test] fn name(arg in strategy, ..) { .. }`
/// items into plain `#[test]` functions running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
}

/// `prop_assert!` — panics on failure (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — panics on failure (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!` — panics on failure (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_and_vecs(
            n in 3u32..10,
            xs in prop::collection::vec((0u32..4, -1.0f64..1.0), 1..20),
        ) {
            prop_assert!((3..10).contains(&n));
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for (a, b) in xs {
                prop_assert!(a < 4);
                prop_assert!((-1.0..1.0).contains(&b));
            }
        }

        #[test]
        fn any_is_finite(x in any::<f64>(), b in any::<bool>(), byte in any::<u8>()) {
            prop_assert!(x.is_finite());
            prop_assert!(u8::from(b) <= 1);
            let _ = byte;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 5..6);
        let mut r1 = crate::test_runner::TestRng::for_case("t", 3);
        let mut r2 = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
