//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! Provides [`rngs::StdRng`], [`Rng`] and [`SeedableRng`] with exactly the
//! operations this workspace uses: `seed_from_u64`, `gen::<T>()` and
//! `gen_range(range)`. The generator is xoshiro256++ seeded through
//! splitmix64 — fixed and documented so that seeded simulations are
//! byte-identical across platforms and toolchains.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self;
}

/// Ranges samplable uniformly (`rng.gen_range(range)`).
pub trait SampleRange<T> {
    fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> T;
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<G: RngCore> Rng for G {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zero words from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

fn unit_f64<G: RngCore + ?Sized>(g: &mut G) -> f64 {
    // 53 high bits -> [0, 1)
    (g.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for u64 {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
        g.next_u64()
    }
}
impl Standard for u32 {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
        (g.next_u64() >> 32) as u32
    }
}
impl Standard for u8 {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
        (g.next_u64() >> 56) as u8
    }
}
impl Standard for bool {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
        g.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
        unit_f64(g)
    }
}
impl Standard for f32 {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
        unit_f64(g) as f32
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = ((g.next_u64() as u128) % width) as $t;
                self.start.wrapping_add(draw)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let width = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if width == 0 {
                    return g.next_u64() as $t;
                }
                let draw = ((g.next_u64() as u128) % width) as $t;
                start.wrapping_add(draw)
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

macro_rules! sint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (g.next_u64() as u128) % width;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}
sint_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = unit_f64(g);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding may land exactly on `end`; clamp into range.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> f32 {
        let r = (self.start as f64)..(self.end as f64);
        r.sample_from(g) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
