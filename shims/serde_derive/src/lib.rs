//! Syn-free `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! Parses the item's `TokenStream` directly (no `syn`/`quote` available
//! offline) and emits impls of `serde::Serialize` / `serde::Deserialize`
//! as rendered source re-parsed into a `TokenStream`. Supported shapes —
//! exactly those used in this workspace:
//!
//! * named-field structs          → JSON object, declaration order
//! * newtype structs `S(T)`       → the inner value, transparently
//! * tuple structs `S(A, B, ..)`  → JSON array
//! * unit-only enums              → the variant name as a JSON string
//!
//! Generics and data-carrying enum variants are rejected with a clear
//! compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match which {
        Which::Serialize => render_serialize(&item),
        Which::Deserialize => render_deserialize(&item),
    };
    code.parse().expect("derive shim generated invalid Rust")
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected type name".into()),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported"
        ));
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            _ => return Err(format!("serde shim derive: unsupported struct `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_unit_variants(g.stream(), &name)?)
            }
            _ => return Err(format!("serde shim derive: unsupported enum `{name}`")),
        },
        other => {
            return Err(format!(
                "serde shim derive: cannot derive for `{other}` items"
            ))
        }
    };
    Ok(Item { name, shape })
}

/// Advance past any `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' then the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Field names of `{ a: T, b: U, .. }`, skipping types with angle-bracket
/// depth tracking so `BTreeMap<String, u64>` does not split on its comma.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            _ => return Err("serde shim derive: expected field name".into()),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde shim derive: expected `:` after `{name}`")),
        }
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_any = false;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    fields += 1;
                    saw_any = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_any = true;
    }
    fields + usize::from(saw_any)
}

fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            _ => return Err(format!("serde shim derive: bad variant in `{enum_name}`")),
        };
        i += 1;
        match tokens.get(i) {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                i += 1;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Skip an explicit discriminant.
                i += 1;
                loop {
                    match tokens.get(i) {
                        None => break,
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                        _ => i += 1,
                    }
                }
                i += 1;
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde shim derive: enum `{enum_name}` has data-carrying variant `{name}`; only unit variants are supported"
                ));
            }
            _ => return Err(format!("serde shim derive: bad token in `{enum_name}`")),
        }
        variants.push(name);
    }
    Ok(variants)
}

fn render_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("serde::Value::Object(::std::vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::Unit => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "serde::Value::Str(::std::string::String::from(match self {{ {} }}))",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{ {body} }}\n}}\n"
    )
}

fn render_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(v.get({f:?}).unwrap_or(&serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|k| {
                    format!(
                        "serde::Deserialize::from_value(items.get({k}).unwrap_or(&serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| serde::Error::expected(\"array\", v))?;\n         ::std::result::Result::Ok({name}({}))",
                gets.join(", ")
            )
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|var| format!("::std::option::Option::Some({var:?}) => ::std::result::Result::Ok({name}::{var}),"))
                .collect();
            format!(
                "match v.as_str() {{\n            {}\n            _ => ::std::result::Result::Err(serde::Error::expected({:?}, v)),\n        }}",
                arms.join("\n            "),
                format!("one of the unit variants of {name}")
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n    fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n        {body}\n    }}\n}}\n"
    )
}
