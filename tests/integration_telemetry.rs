//! Cross-crate integration of the telemetry layer: determinism of the
//! exported snapshot, conservation between the counter registry and the
//! packet trace, trace invariance, and phase attribution coverage.

use fxnet::telemetry::SpanKind;
use fxnet::trace::PhaseBreakdown;
use fxnet::{KernelKind, RunResult, SimTime, TestbedBuilder};
use std::sync::OnceLock;

/// Run each kernel once with telemetry and share the result across tests.
fn run(kernel: KernelKind) -> &'static RunResult<u64> {
    static SOR: OnceLock<RunResult<u64>> = OnceLock::new();
    static FFT: OnceLock<RunResult<u64>> = OnceLock::new();
    static TFFT: OnceLock<RunResult<u64>> = OnceLock::new();
    static SEQ: OnceLock<RunResult<u64>> = OnceLock::new();
    static HIST: OnceLock<RunResult<u64>> = OnceLock::new();
    let (cell, div) = match kernel {
        KernelKind::Sor => (&SOR, 20),
        KernelKind::Fft2d => (&FFT, 20),
        KernelKind::T2dfft => (&TFFT, 20),
        KernelKind::Seq => (&SEQ, 5),
        KernelKind::Hist => (&HIST, 20),
    };
    cell.get_or_init(|| {
        TestbedBuilder::paper()
            .seed(1998)
            .telemetry()
            .build()
            .run_kernel(kernel, div)
            .unwrap()
    })
}

#[test]
fn same_seed_runs_produce_identical_telemetry_json() {
    let a = TestbedBuilder::paper()
        .seed(1998)
        .telemetry()
        .build()
        .run_kernel(KernelKind::Hist, 20)
        .unwrap();
    let b = TestbedBuilder::paper()
        .seed(1998)
        .telemetry()
        .build()
        .run_kernel(KernelKind::Hist, 20)
        .unwrap();
    let ja = serde::json::to_string(&a.telemetry.expect("telemetry on").to_value());
    let jb = serde::json::to_string(&b.telemetry.expect("telemetry on").to_value());
    assert_eq!(ja, jb, "telemetry snapshot must be a function of the seed");
}

#[test]
fn telemetry_does_not_perturb_the_trace() {
    let plain = TestbedBuilder::paper()
        .seed(7)
        .build()
        .run_kernel(KernelKind::Hist, 20)
        .unwrap();
    let tele = TestbedBuilder::paper()
        .seed(7)
        .telemetry()
        .build()
        .run_kernel(KernelKind::Hist, 20)
        .unwrap();
    assert!(plain.telemetry.is_none());
    assert_eq!(
        plain.trace, tele.trace,
        "span collection must not move a single frame"
    );
    assert_eq!(plain.ether, tele.ether);
}

#[test]
fn registry_counters_conserve_trace_totals() {
    // On the lossless shared bus every delivered frame is captured, so
    // the MAC registry counters, the EtherStats snapshot and the trace
    // must agree exactly.
    let run = run(KernelKind::Sor);
    let reg = &run.telemetry.as_ref().expect("telemetry on").registry;
    let trace_bytes: u64 = run.trace.iter().map(|r| u64::from(r.wire_len)).sum();
    assert_eq!(
        reg.counter("mac.frames_delivered"),
        run.ether.frames_delivered
    );
    assert_eq!(
        reg.counter("mac.bytes_delivered"),
        run.ether.bytes_delivered
    );
    assert_eq!(reg.counter("mac.frames_delivered"), run.trace.len() as u64);
    assert_eq!(reg.counter("mac.bytes_delivered"), trace_bytes);
    assert_eq!(reg.counter("mac.collisions"), run.ether.collisions);
}

#[test]
fn engine_counters_and_spans_are_populated() {
    let run = run(KernelKind::Hist);
    let tel = run.telemetry.as_ref().expect("telemetry on");
    assert!(tel.registry.counter("engine.events.send") > 0);
    assert!(tel.registry.counter("engine.events.recv") > 0);
    assert!(tel.registry.counter("tcp.data_segments") > 0);
    assert!(tel.registry.counter("pvm.messages_sent") > 0);
    assert!(!tel.spans.is_empty());
    for s in &tel.spans {
        assert!(s.end >= s.begin, "span {s:?} ends before it begins");
    }
    assert!(
        tel.spans.iter().any(|s| s.kind == SpanKind::Collective),
        "kernels must emit named collective spans"
    );
}

#[test]
fn most_data_bytes_attribute_to_a_named_phase() {
    // The acceptance figure of the `phases` experiment: ≥ 90 % of traced
    // data bytes belong to a named collective span, for every kernel.
    for k in KernelKind::ALL {
        let run = run(k);
        let tel = run.telemetry.as_ref().expect("telemetry on");
        let bd = PhaseBreakdown::compute(&run.trace, &tel.spans, 4, SimTime::from_millis(10));
        assert!(
            bd.data_attribution_fraction >= 0.9,
            "{}: only {:.1}% of data bytes attributed",
            k.name(),
            100.0 * bd.data_attribution_fraction
        );
        assert!(!bd.rows.is_empty(), "{} has no named phases", k.name());
    }
}
