//! Integration tests for the multi-tenant mixer: admission, shared-wire
//! co-execution, trace demux conservation, and determinism.

use fxnet::mix::{MixTenant, TenantProgram};
use fxnet::qos::QosNetwork;
use fxnet::sim::SimTime;
use fxnet::{KernelKind, Testbed, TestbedBuilder};

fn shift(name: &str, p: u32, start_ms: u64) -> MixTenant {
    MixTenant {
        name: name.to_string(),
        program: TenantProgram::Shift {
            work_s: 0.05,
            bytes: 30_000,
            rounds: 4,
        },
        p,
        start: SimTime::from_millis(start_ms),
        claim_scale: 1.0,
    }
}

#[test]
fn mixed_kernels_conserve_every_frame() {
    let out = Testbed::quiet(2)
        .mix()
        .tenant(MixTenant::kernel(
            "SOR",
            KernelKind::Sor,
            100,
            2,
            SimTime::ZERO,
        ))
        .tenant(MixTenant::kernel(
            "HIST",
            KernelKind::Hist,
            100,
            2,
            SimTime::from_millis(50),
        ))
        .solo_baselines(false)
        .run();
    assert_eq!(out.tenants.len(), 2);
    let total = out.check_conservation();
    assert!(total > 0);
    // Both tenants actually put traffic on the shared wire.
    for t in &out.tenants {
        assert!(!t.frames.is_empty(), "{} demuxed no frames", t.name);
    }
    // Demux is by host ownership, so the sub-traces use disjoint hosts.
    let slice0 = &out.map.slices()[0];
    let slice1 = &out.map.slices()[1];
    for r in &out.tenants[0].frames {
        assert!(slice0.owns_host(r.src) && slice0.owns_host(r.dst));
    }
    for r in &out.tenants[1].frames {
        assert!(slice1.owns_host(r.src) && slice1.owns_host(r.dst));
    }
}

#[test]
fn mixed_run_is_deterministic_for_a_seed() {
    let run = |seed: u64| {
        TestbedBuilder::quiet(2)
            .seed(seed)
            .build()
            .mix()
            .tenant(shift("alpha", 2, 0))
            .tenant(shift("beta", 2, 25))
            .run()
    };
    let (a, b) = (run(7), run(7));
    assert_eq!(a.trace, b.trace, "same seed must give an identical trace");
    assert_eq!(a.report(), b.report());
    // Interference metrics are part of the deterministic output.
    for (x, y) in a.tenants.iter().zip(&b.tenants) {
        assert_eq!(x.measured_slowdown, y.measured_slowdown);
        assert_eq!(x.burst_collisions, y.burst_collisions);
    }
}

#[test]
fn interference_slows_tenants_down() {
    let out = Testbed::quiet(2)
        .mix()
        .tenant(shift("alpha", 2, 0))
        .tenant(shift("beta", 2, 0))
        .run();
    // Two identical shift tenants bursting simultaneously share the
    // 10 Mb/s wire: both must take at least as long as they do alone.
    for t in &out.tenants {
        let s = t.measured_slowdown.expect("solo baseline was run");
        assert!(s >= 1.0 - 1e-9, "{} sped up under contention: {s}", t.name);
        assert!(t.predicted_slowdown > 1.0);
    }
}

#[test]
fn saturated_admission_rejects_the_late_tenant() {
    let out = Testbed::quiet(4)
        .mix()
        .network(QosNetwork::ethernet_10mbps().with_min_burst_bw(50_000.0))
        .solo_baselines(false)
        .tenant(MixTenant::shift("t1", 2.0, 400_000, 3, 4))
        .tenant(MixTenant::shift("t2", 2.0, 400_000, 3, 4))
        .tenant(MixTenant::shift("t3", 2.0, 400_000, 3, 4))
        .run();
    assert!(!out.rejected.is_empty(), "third tenant must be refused");
    assert!(out.tenants.len() == 2);
    assert_eq!(out.rejected[0].name, "t3");
    // The rejected tenant never ran: no hosts, no frames.
    assert_eq!(out.map.len(), 2);
    out.check_conservation();
}

#[test]
fn switched_segments_isolate_tenants_from_each_other() {
    // Tenants pinned to different switches (hosts 0,1 on sw0; 2,3 on
    // sw1) never share a link: each one's mixed timing equals its solo
    // timing, unlike the shared-bus run above.
    let spec = fxnet::TopologySpec::two_switches_trunk(4, fxnet::sim::RATE_10M);
    let out = TestbedBuilder::quiet(4)
        .topology(spec)
        .build()
        .mix()
        .tenant(shift("alpha", 2, 0))
        .tenant(shift("beta", 2, 0))
        .run();
    out.check_conservation();
    for t in &out.tenants {
        let s = t.measured_slowdown.expect("solo baseline was run");
        assert!(
            (s - 1.0).abs() < 1e-6,
            "{} should be unaffected behind its own switch: {s}",
            t.name
        );
    }
}

#[test]
fn trunk_spanning_tenants_contend_only_on_the_trunk() {
    // Interleaved attachment pins each tenant across both switches
    // (alpha = hosts 0,1 → sw0,sw1; beta = hosts 2,3 → sw0,sw1): every
    // burst crosses the trunk, so the trunk is the only shared resource.
    let mut spec = fxnet::TopologySpec::two_switches_trunk(4, fxnet::sim::RATE_10M);
    spec.attachments = vec![0, 1, 0, 1];
    let out = TestbedBuilder::quiet(4)
        .topology(spec)
        .build()
        .mix()
        .tenant(shift("alpha", 2, 0))
        .tenant(shift("beta", 2, 0))
        .run();
    out.check_conservation();
    let slow: Vec<f64> = out
        .tenants
        .iter()
        .map(|t| t.measured_slowdown.expect("solo baseline was run"))
        .collect();
    assert!(
        slow.iter().all(|&s| s >= 1.0 - 1e-9),
        "no tenant speeds up under trunk contention: {slow:?}"
    );
    assert!(
        slow.iter().any(|&s| s > 1.0 + 1e-9),
        "simultaneous cross-trunk bursts must queue on the trunk: {slow:?}"
    );
}
