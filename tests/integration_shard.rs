//! Cross-crate integration for the sharded DES core (`fxnet-shard`
//! behind `TestbedBuilder::shards`): every observable artifact of a run
//! — the promiscuous trace, program timing, MAC statistics, the causal
//! capture, the streaming watcher's event log and metrics, and the
//! violation-blame export — is byte-identical at shard counts 1, 2,
//! and 4 on every fabric, for all six measured programs and across
//! seeds. Shard count 1 takes the legacy sequential fabric path, so
//! these equalities also pin the sharded core to the pre-shard
//! behavior bit for bit.

use fxnet::causal::{blame_value, blame_violation};
use fxnet::mix::MixTenant;
use fxnet::telemetry::prometheus_text;
use fxnet::watch::WatchConfig;
use fxnet::{KernelKind, RunOptions, RunResult, SimTime, TestbedBuilder, TopologySpec};

/// A measured program as a function of the fabric and the shard count.
type Program = Box<dyn Fn(TopologySpec, usize) -> RunResult<u64>>;

/// The six measured programs (§5) at reduced scale, parameterized by
/// fabric and shard count: the five Fx kernels plus the §7.3 shift
/// pattern. Determinism is scale-independent, so the divisors are
/// chosen for suite wall clock, not fidelity.
fn programs(seed: u64) -> Vec<(&'static str, Program)> {
    let kernel = |k: KernelKind, div: usize| {
        Box::new(move |spec: TopologySpec, shards: usize| {
            TestbedBuilder::paper()
                .seed(seed)
                .topology(spec)
                .shards(shards)
                .build()
                .run_kernel(k, div)
                .unwrap()
        }) as Program
    };
    vec![
        ("SOR", kernel(KernelKind::Sor, 50)),
        ("2DFFT", kernel(KernelKind::Fft2d, 50)),
        ("T2DFFT", kernel(KernelKind::T2dfft, 50)),
        ("SEQ", kernel(KernelKind::Seq, 10)),
        ("HIST", kernel(KernelKind::Hist, 50)),
        (
            "SHIFT",
            Box::new(move |spec: TopologySpec, shards: usize| {
                TestbedBuilder::quiet(4)
                    .seed(seed)
                    .topology(spec)
                    .shards(shards)
                    .build()
                    .run(move |ctx| {
                        let payload = vec![1u8; 40_000];
                        for round in 0..3i32 {
                            ctx.compute_time(SimTime::from_millis(30));
                            let _ = fxnet::fx::shift(ctx, round, 1, &payload);
                        }
                        0u64
                    })
            }),
        ),
    ]
}

/// The fabrics the determinism contract is pinned on: the degenerate
/// single segment (one shard no matter what is requested), the
/// two-switch trunk (cut into 2 blocks), and the two-level tree (3).
fn fabrics(hosts: u32) -> Vec<TopologySpec> {
    vec![
        TopologySpec::single_segment(hosts, fxnet::sim::RATE_10M),
        TopologySpec::two_switches_trunk(hosts, fxnet::sim::RATE_10M),
        TopologySpec::two_level_tree(hosts, fxnet::sim::RATE_10M),
    ]
}

fn hosts_of(name: &str) -> u32 {
    if name == "SHIFT" {
        4
    } else {
        9
    }
}

#[test]
fn six_programs_are_byte_identical_at_shard_counts_1_2_4() {
    for seed in [7u64, 1998] {
        for (name, run) in programs(seed) {
            for spec in fabrics(hosts_of(name)) {
                // shards=1 takes the legacy sequential fabric path.
                let base = run(spec.clone(), 1);
                for shards in [2usize, 4] {
                    let got = run(spec.clone(), shards);
                    let label = format!("{name} on {} seed={seed} shards={shards}", spec.label());
                    assert_eq!(base.trace, got.trace, "{label}: trace diverged");
                    assert_eq!(
                        base.finished_at, got.finished_at,
                        "{label}: program timing diverged"
                    );
                    assert_eq!(base.ether, got.ether, "{label}: MAC statistics diverged");
                    assert_eq!(base.results, got.results, "{label}: results diverged");
                }
            }
        }
    }
}

#[test]
fn causal_capture_is_byte_identical_across_shard_counts() {
    let run_at = |shards: usize| {
        let out = TestbedBuilder::paper()
            .seed(7)
            .topology(TopologySpec::two_switches_trunk(9, fxnet::sim::RATE_10M))
            .shards(shards)
            .build()
            .run_kernel_opts(
                KernelKind::Hist,
                50,
                RunOptions {
                    causal: true,
                    ..RunOptions::default()
                },
            )
            .unwrap();
        serde::json::to_string(&out.causal.expect("causal capture on"))
    };
    let base = run_at(1);
    assert_eq!(base, run_at(2), "2 shards: causal capture diverged");
    assert_eq!(base, run_at(4), "4 shards: causal capture diverged");
}

/// The watched two-tenant mix on a trunked fabric — one honest shift
/// tenant, one claiming a tenth of its true burst sizes — with causal
/// capture attached. Returns the three artifacts repro serializes:
/// the watcher's JSONL event log (flight recorder included), the
/// Prometheus metrics snapshot, and the violation-blame JSON.
fn watched_artifacts(shards: usize) -> (String, String, String) {
    let mut spec = TopologySpec::two_switches_trunk(4, fxnet::sim::RATE_10M);
    spec.attachments = vec![0, 1, 0, 1]; // both tenants span the trunk
    let mut liar = MixTenant::shift("liar", 0.05, 30_000, 4, 2).with_claim_scale(0.1);
    liar.start = SimTime::from_millis(30);
    let out = TestbedBuilder::quiet(4)
        .seed(11)
        .topology(spec)
        .shards(shards)
        .build()
        .mix()
        .solo_baselines(false)
        .causal(true)
        .tenant(MixTenant::shift("honest", 0.05, 30_000, 4, 2))
        .tenant(liar)
        .watch(WatchConfig::default())
        .run();
    let report = out.watch.as_ref().expect("watch was enabled");
    let run = out.causal.as_ref().expect("causal capture was enabled");
    let event = report
        .events
        .iter()
        .find(|e| e.tenant == "liar")
        .expect("the over-driver latches a violation");
    let blame = blame_violation(event, run, &out.map);
    assert!(
        blame.matched,
        "flight recorder located in the causal stream"
    );
    (
        report.events_jsonl(),
        prometheus_text(&report.registry),
        serde::json::to_string(&blame_value(&blame)),
    )
}

#[test]
fn watch_events_metrics_and_blame_are_byte_identical_across_shard_counts() {
    let base = watched_artifacts(1);
    assert_eq!(base, watched_artifacts(2), "2 shards: artifacts diverged");
    assert_eq!(base, watched_artifacts(4), "4 shards: artifacts diverged");
}
