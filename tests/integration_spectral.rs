//! End-to-end §7.2: measured trace → truncated Fourier model →
//! regenerated traffic, plus the parallel-vs-media contrast.

use fxnet::sim::SimRng;
use fxnet::spectral::generate::SynthConfig;
use fxnet::spectral::{
    cbr_trace, hurst_aggregated_variance, onoff_vbr_trace, self_similar_trace, synthesize_trace,
    FourierModel,
};
use fxnet::trace::{binned_bandwidth, Periodogram};
use fxnet::{KernelKind, RunResult, SimTime, TestbedBuilder};
use std::sync::OnceLock;

const BIN: SimTime = SimTime(10_000_000);

fn hist_run() -> &'static RunResult<u64> {
    static RUN: OnceLock<RunResult<u64>> = OnceLock::new();
    RUN.get_or_init(|| {
        TestbedBuilder::paper()
            .seed(3)
            .build()
            .run_kernel(KernelKind::Hist, 4)
            .unwrap()
    })
}

#[test]
fn truncated_model_converges_on_measured_kernel_traffic() {
    let series = binned_bandwidth(&hist_run().trace, BIN);
    let spec = Periodogram::compute(&series, BIN);
    // Zero-padding the non-power-of-two series makes the expansion only
    // approximately orthogonal, so allow a small tolerance per step but
    // require a clear overall decrease.
    let errs: Vec<f64> = [1usize, 4, 16, 64]
        .iter()
        .map(|&k| FourierModel::from_periodogram(&spec, k, 0.05).reconstruction_error(&series, BIN))
        .collect();
    for w in errs.windows(2) {
        assert!(w[1] <= w[0] + 0.05, "error not converging: {errs:?}");
    }
    assert!(
        errs[3] < errs[0] * 0.9,
        "64 spikes should beat 1 spike clearly: {errs:?}"
    );
    assert!(errs[3] < 1.0, "64-spike model error {}", errs[3]);
}

#[test]
fn model_fundamental_matches_measured_dominant_frequency() {
    let series = binned_bandwidth(&hist_run().trace, BIN);
    let spec = Periodogram::compute(&series, BIN);
    let dominant = spec.dominant_frequency(0.2).expect("spectrum");
    let model = FourierModel::from_periodogram(&spec, 8, 0.2);
    let has_dominant = model
        .spikes
        .iter()
        .any(|s| (s.freq - dominant).abs() < 2.0 * spec.df);
    assert!(has_dominant, "model spikes miss the dominant {dominant} Hz");
}

#[test]
fn regenerated_traffic_reproduces_the_periodicity() {
    let series = binned_bandwidth(&hist_run().trace, BIN);
    let spec = Periodogram::compute(&series, BIN);
    let model = FourierModel::from_periodogram(&spec, 16, 0.1);
    let mut rng = SimRng::new(5);
    let synth = synthesize_trace(
        &model,
        SimTime::from_secs_f64(series.len() as f64 * 0.01),
        &SynthConfig::default(),
        &mut rng,
    );
    assert!(!synth.is_empty());
    let synth_spec = Periodogram::compute(&binned_bandwidth(&synth, BIN), BIN);
    let f_meas = spec.dominant_frequency(0.2).unwrap();
    let f_synth = synth_spec.dominant_frequency(0.2).unwrap();
    assert!(
        (f_meas - f_synth).abs() < 0.5,
        "measured {f_meas:.2} Hz vs regenerated {f_synth:.2} Hz"
    );
}

#[test]
fn parallel_traffic_is_spikier_than_media_traffic() {
    // The paper's headline contrast, §1/§8: the kernel's spectral energy
    // concentrates in a few discrete harmonics; random on/off media
    // traffic spreads energy across the band.
    let concentration = |trace: &[fxnet::FrameRecord]| {
        let spec = Periodogram::compute(&binned_bandwidth(trace, BIN), BIN);
        FourierModel::from_periodogram(&spec, 8, 0.1).captured_power_fraction(&spec)
    };
    let kernel_c = concentration(&hist_run().trace);
    let mut rng = SimRng::new(9);
    let dur = SimTime::from_secs(40);
    let vbr = onoff_vbr_trace(400_000.0, 0.4, 0.6, 1000, dur, &mut rng);
    let vbr_c = concentration(&vbr);
    assert!(
        kernel_c > 1.5 * vbr_c,
        "kernel concentration {kernel_c:.3} must exceed VBR {vbr_c:.3}"
    );
}

#[test]
fn media_traffic_lacks_the_kernels_discrete_harmonics() {
    // Kernel spectra concentrate energy in few spikes; CBR concentrates
    // at its packet rate only; self-similar spreads energy broadly. Use
    // captured-power-in-8-spikes as the concentration metric.
    let concentration = |trace: &[fxnet::FrameRecord]| {
        let spec = Periodogram::compute(&binned_bandwidth(trace, BIN), BIN);
        FourierModel::from_periodogram(&spec, 8, 0.1).captured_power_fraction(&spec)
    };
    let kernel_c = concentration(&hist_run().trace);
    let mut rng = SimRng::new(21);
    let ss = self_similar_trace(
        16,
        40_000.0,
        1.5,
        0.5,
        800,
        SimTime::from_secs(60),
        &mut rng,
    );
    let ss_c = concentration(&ss);
    assert!(
        kernel_c > ss_c,
        "kernel concentration {kernel_c:.3} vs self-similar {ss_c:.3}"
    );
}

#[test]
fn hurst_separates_self_similar_from_periodic_kernel_traffic() {
    let series = binned_bandwidth(&hist_run().trace, SimTime::from_millis(50));
    let h_kernel = hurst_aggregated_variance(&series);
    let mut rng = SimRng::new(31);
    let ss = self_similar_trace(
        32,
        20_000.0,
        1.4,
        1.0,
        500,
        SimTime::from_secs(200),
        &mut rng,
    );
    let h_ss = hurst_aggregated_variance(&binned_bandwidth(&ss, SimTime::from_millis(50))).unwrap();
    assert!(h_ss > 0.6, "self-similar H = {h_ss}");
    if let Some(h) = h_kernel {
        // Periodic traffic decorrelates under aggregation: H well below
        // the self-similar source's.
        assert!(h < h_ss, "kernel H {h} vs self-similar {h_ss}");
    }
}

#[test]
fn cbr_has_single_spectral_line_not_burst_harmonics() {
    let cbr = cbr_trace(200_000.0, 1000, SimTime::from_secs(30));
    let spec = Periodogram::compute(&binned_bandwidth(&cbr, BIN), BIN);
    // CBR at 200 packets/s sampled in 10 ms bins is essentially constant:
    // almost no AC energy at all compared to its DC level.
    let ac = spec.total_power().sqrt();
    assert!(
        ac < spec.mean * 50.0,
        "CBR should be nearly flat (ac {ac:.1} vs mean {:.1})",
        spec.mean
    );
}
