//! Failure injection: OS descheduling (the paper's burst-merging
//! artifact, §6.1) and the lossy-bus extension with TCP recovery.

use fxnet::apps::sor::{sor_rank, sor_sequential, SorParams};
use fxnet::apps::KernelKind;
use fxnet::trace::{binned_bandwidth, Stats};
use fxnet::{SimTime, Testbed, TestbedBuilder};

#[test]
fn deschedule_injection_stalls_the_synchronous_schedule() {
    // §6.1 on 2DFFT: "the third and fourth burst are short because they
    // are, in fact, a single communication phase where some processor
    // descheduled the program ... the communication phase stalled until
    // that processor was able to send again." With injection the run
    // takes longer and the worst interarrival gap grows.
    let clean = TestbedBuilder::paper()
        .seed(11)
        .build()
        .run_kernel(KernelKind::Fft2d, 20)
        .unwrap();
    let slowed = TestbedBuilder::paper()
        .seed(11)
        .deschedule(SimTime::from_millis(400), SimTime::from_millis(150))
        .build()
        .run_kernel(KernelKind::Fft2d, 20)
        .unwrap();
    assert!(
        slowed.finished_at > clean.finished_at,
        "descheduling must stretch the run ({} vs {})",
        slowed.finished_at,
        clean.finished_at
    );
    let g_clean = Stats::interarrivals_ms(&clean.trace).unwrap().max;
    let g_slow = Stats::interarrivals_ms(&slowed.trace).unwrap().max;
    assert!(
        g_slow > g_clean,
        "stalls must appear as longer silent gaps ({g_slow:.0} vs {g_clean:.0} ms)"
    );
}

#[test]
fn deschedule_preserves_results() {
    let params = SorParams::tiny();
    let want = sor_sequential(&params, 4);
    let p2 = params.clone();
    let run = TestbedBuilder::quiet(4)
        .deschedule(SimTime::from_millis(50), SimTime::from_millis(30))
        .build()
        .run(move |ctx| sor_rank(ctx, &p2));
    assert_eq!(run.results, want, "descheduling must not corrupt data");
}

#[test]
fn lossy_bus_recovers_correct_results_via_retransmission() {
    let params = SorParams::tiny();
    let want = sor_sequential(&params, 4);
    let p2 = params.clone();
    let run = TestbedBuilder::quiet(4)
        .loss(0.05)
        .build()
        .run(move |ctx| sor_rank(ctx, &p2));
    assert_eq!(run.results, want, "TCP must mask frame corruption");
}

#[test]
fn lossy_bus_stretches_the_run() {
    let params = SorParams::tiny();
    let p1 = params.clone();
    let clean = Testbed::quiet(4).run(move |ctx| sor_rank(ctx, &p1));
    let p2 = params.clone();
    let lossy = TestbedBuilder::quiet(4)
        .loss(0.08)
        .build()
        .run(move |ctx| sor_rank(ctx, &p2));
    assert!(
        lossy.finished_at > clean.finished_at,
        "retransmission timeouts must cost simulated time ({} vs {})",
        lossy.finished_at,
        clean.finished_at
    );
}

#[test]
fn heavy_contention_still_delivers_everything() {
    // All four ranks blast simultaneously: collisions and backoff must
    // resolve without losing a message (MAC-level stress).
    let run = Testbed::quiet(4).run(|ctx| {
        let me = ctx.rank();
        let mut b = fxnet::pvm::MessageBuilder::new(0);
        b.pack_f64(&vec![f64::from(me); 20_000]);
        let msg = b.finish();
        for d in 0..4 {
            if d != me {
                ctx.send(d, msg.clone());
            }
        }
        let mut got = 0;
        for s in 0..4 {
            if s != me {
                let m = ctx.recv(s);
                assert_eq!(m.reader().f64s(20_000)[0], f64::from(s));
                got += 1;
            }
        }
        got
    });
    assert!(run.results.iter().all(|&g| g == 3));
    assert!(
        run.ether.collisions > 0,
        "simultaneous senders must collide"
    );
    assert_eq!(run.ether.frames_dropped, 0);
}

#[test]
fn burst_structure_survives_mild_loss() {
    // The periodicity claim is robust: mild corruption does not destroy
    // the quiet/burst alternation.
    let run = TestbedBuilder::paper()
        .seed(13)
        .loss(0.01)
        .build()
        .run_kernel(KernelKind::Hist, 10)
        .unwrap();
    let series = binned_bandwidth(&run.trace, SimTime::from_millis(10));
    let quiet = series.iter().filter(|&&v| v < 1000.0).count();
    assert!(quiet * 10 > series.len(), "quiet gaps must persist");
}
