//! Cross-crate integration for the streaming watcher (`fxnet-watch`):
//! the streaming primitives agree with the batch trace/spectral analyses
//! on the traces of all six measured programs, the watcher's output
//! (events, flight-recorder dumps, metrics) is a pure function of the
//! seed, and an over-driving tenant is caught online while the honest
//! tenant stays clean.

use fxnet::mix::MixTenant;
use fxnet::spectral::{goertzel_power, padded_bin};
use fxnet::telemetry::prometheus_text;
use fxnet::trace::{
    binned_bandwidth, sliding_window_bandwidth, Periodogram, SlidingBandwidth, StreamBinner,
};
use fxnet::watch::{EventKind, WatchConfig, WatchReport};
use fxnet::{FrameRecord, KernelKind, SimTime, TestbedBuilder};

const BIN: SimTime = SimTime(10_000_000); // the paper's 10 ms window

/// The six measured programs (§5): the five Fx kernels at reduced
/// iteration counts plus the §7.3 shift pattern.
fn six_programs() -> Vec<(String, Vec<FrameRecord>)> {
    let mut traces = Vec::new();
    for (k, div) in [
        (KernelKind::Sor, 20),
        (KernelKind::Fft2d, 20),
        (KernelKind::T2dfft, 20),
        (KernelKind::Seq, 5),
        (KernelKind::Hist, 20),
    ] {
        let run = TestbedBuilder::paper()
            .seed(7)
            .build()
            .run_kernel(k, div)
            .unwrap();
        traces.push((k.name().to_string(), run.trace));
    }
    let run = TestbedBuilder::quiet(4).seed(7).build().run(move |ctx| {
        let payload = vec![1u8; 40_000];
        for round in 0..4i32 {
            ctx.compute_time(SimTime::from_millis(30));
            let _ = fxnet::fx::shift(ctx, round, 1, &payload);
        }
        0u64
    });
    traces.push(("SHIFT".to_string(), run.trace));
    traces
}

#[test]
fn streaming_binned_bandwidth_matches_batch_on_all_six_programs() {
    for (name, trace) in six_programs() {
        let batch = binned_bandwidth(&trace, BIN);
        let mut binner = StreamBinner::new(BIN);
        let mut streamed = Vec::new();
        for r in &trace {
            binner.push(r.time, r.wire_len);
            while let Some(v) = binner.pop_closed() {
                streamed.push(v);
            }
        }
        streamed.extend(binner.finish());
        assert_eq!(streamed.len(), batch.len(), "{name}: bin count");
        for (i, (s, b)) in streamed.iter().zip(&batch).enumerate() {
            assert!(
                (s - b).abs() <= 1e-9,
                "{name}: bin {i} streamed {s} vs batch {b}"
            );
        }
    }
}

#[test]
fn streaming_window_bandwidth_matches_batch_on_all_six_programs() {
    for (name, trace) in six_programs() {
        let batch = sliding_window_bandwidth(&trace, BIN);
        assert_eq!(batch.len(), trace.len(), "{name}: one point per frame");
        let mut win = SlidingBandwidth::new(BIN);
        for (i, r) in trace.iter().enumerate() {
            let v = win.push(r.time, r.wire_len);
            assert!(
                (v - batch[i].1).abs() <= 1e-9,
                "{name}: frame {i} streamed {v} vs batch {}",
                batch[i].1
            );
        }
    }
}

#[test]
fn goertzel_power_matches_the_fft_periodogram_on_all_six_programs() {
    for (name, trace) in six_programs() {
        let series = binned_bandwidth(&trace, BIN);
        let spec = Periodogram::compute(&series, BIN);
        // The bins a live watcher would track: the spectral peaks the
        // batch analysis reports, plus fixed low bins and Nyquist.
        let mut bins = vec![1usize, 2, 3, spec.power.len() - 1];
        for s in spec.top_spikes(5, 0.0) {
            bins.push(padded_bin(s.freq, series.len(), BIN));
        }
        let scale: f64 = series.iter().map(|x| x * x).sum::<f64>().max(1.0);
        for bin in bins {
            let g = goertzel_power(&series, bin);
            let f = spec.power[bin];
            let rel = (g - f).abs() / g.abs().max(f.abs()).max(1e-30);
            assert!(
                rel < 1e-9 || (g - f).abs() < 1e-9 * scale,
                "{name}: bin {bin} goertzel {g:e} vs fft {f:e}"
            );
        }
    }
}

/// A watched two-tenant mix: one honest shift tenant, one that presents
/// a tenth of its true burst sizes at admission.
fn watched_mix(seed: u64) -> WatchReport {
    let mut liar = MixTenant::shift("liar", 0.05, 30_000, 4, 2).with_claim_scale(0.1);
    liar.start = SimTime::from_millis(30);
    TestbedBuilder::quiet(2)
        .seed(seed)
        .build()
        .mix()
        .solo_baselines(false)
        .tenant(MixTenant::shift("honest", 0.05, 30_000, 4, 2))
        .tenant(liar)
        .watch(WatchConfig::default())
        .run()
        .watch
        .expect("watch was enabled")
}

#[test]
fn watcher_events_and_metrics_are_a_pure_function_of_the_seed() {
    let (a, b) = (watched_mix(11), watched_mix(11));
    assert_eq!(
        a.events_jsonl(),
        b.events_jsonl(),
        "same seed, same event log (flight-recorder dumps included)"
    );
    assert_eq!(
        prometheus_text(&a.registry),
        prometheus_text(&b.registry),
        "same seed, same exported metrics"
    );
}

#[test]
fn watcher_catches_the_overdriver_online() {
    let report = watched_mix(11);
    assert_eq!(report.violations_for("liar"), 1, "one latched violation");
    assert_eq!(report.violations_for("honest"), 0, "honest tenant clean");
    let cap = WatchConfig::default().flight_recorder;
    for e in &report.events {
        assert!(e.tenant == "liar", "only the liar trips the watcher");
        assert!(!e.flight_recorder.is_empty(), "dump must hold frames");
        assert!(e.flight_recorder.len() <= cap, "dump bounded by the ring");
        // The dump is the frames leading up to the event, in order.
        for w in e.flight_recorder.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        let last = e.flight_recorder.last().expect("non-empty");
        assert!(last.time <= e.time, "no frames from after the event");
    }
    assert!(report
        .events
        .iter()
        .any(|e| e.kind == EventKind::ContractViolation));
}

#[test]
fn watcher_streams_a_trunked_topology_run() {
    // The live tap rides the composite fabric's capture point, so the
    // watcher sees a multi-segment run exactly like a shared-bus one —
    // and stays a pure function of the seed.
    let mut spec = fxnet::TopologySpec::two_switches_trunk(4, fxnet::sim::RATE_10M);
    spec.attachments = vec![0, 1, 0, 1]; // both tenants span the trunk
    let run = |seed: u64| {
        TestbedBuilder::quiet(4)
            .seed(seed)
            .topology(spec.clone())
            .build()
            .mix()
            .solo_baselines(false)
            .tenant(MixTenant::shift("up", 0.05, 30_000, 4, 2))
            .tenant(MixTenant::shift("down", 0.05, 30_000, 4, 2))
            .watch(WatchConfig::default())
            .run()
    };
    let out = run(3);
    let report = out.watch.expect("watch was enabled");
    assert!(
        report
            .registry
            .counters()
            .any(|(name, v)| name.contains("frames") && v > 0),
        "watcher metrics must have seen frames"
    );
    assert_eq!(
        run(3).watch.expect("watch on").events_jsonl(),
        report.events_jsonl()
    );
}
