//! DESIGN.md §8 ablations: switched vs shared fabric, processor-count
//! sweep against the §7.3 model, and the calibration's self-consistency.

use fxnet::pvm::MessageBuilder;
use fxnet::qos::{AppDescriptor, QosNetwork};
use fxnet::trace::{average_bandwidth, BurstProfile, Stats};
use fxnet::{KernelKind, SimTime, Testbed, TestbedBuilder};

#[test]
fn switched_fabric_speeds_up_the_all_to_all() {
    // On the shared bus every transfer serializes; a switch forwards
    // disjoint pairs in parallel, so 2DFFT's transpose drains faster and
    // the program finishes sooner.
    let bus = Testbed::quiet(4).run_kernel(KernelKind::Fft2d, 25).unwrap();
    let sw = TestbedBuilder::quiet(4)
        .switched_fabric()
        .build()
        .run_kernel(KernelKind::Fft2d, 25)
        .unwrap();
    assert!(
        sw.finished_at < bus.finished_at,
        "switch {} must beat bus {}",
        sw.finished_at,
        bus.finished_at
    );
    // Same data volume either way.
    let bytes =
        |tr: &[fxnet::FrameRecord]| -> u64 { tr.iter().map(|r| u64::from(r.wire_len)).sum() };
    let (b, s) = (bytes(&bus.trace), bytes(&sw.trace));
    assert!(
        s > b / 2 && s < b * 2,
        "volumes should be comparable: bus {b}, switch {s}"
    );
    // And the aggregate bandwidth the program achieves rises.
    let bw_bus = average_bandwidth(&bus.trace).unwrap();
    let bw_sw = average_bandwidth(&sw.trace).unwrap();
    assert!(bw_sw > bw_bus, "switch bw {bw_sw:.0} vs bus {bw_bus:.0}");
}

#[test]
fn switched_fabric_preserves_results_and_periodicity() {
    // The ablation answers the §8 question: the alternating quiet/burst
    // structure comes from the *program*, not from CSMA/CD — it must
    // survive the fabric swap.
    let sw = TestbedBuilder::quiet(4)
        .switched_fabric()
        .build()
        .run_kernel(KernelKind::Hist, 10)
        .unwrap();
    let series = fxnet::trace::binned_bandwidth(&sw.trace, SimTime::from_millis(10));
    let quiet = series.iter().filter(|&&v| v < 1000.0).count();
    assert!(
        quiet * 10 > series.len() * 3,
        "compute gaps must persist on a switch"
    );
    // No collisions exist on a switch.
    assert_eq!(sw.ether.collisions, 0);
}

#[test]
fn shared_bus_collides_where_switch_cannot() {
    let bus = Testbed::quiet(4).run_kernel(KernelKind::Fft2d, 50).unwrap();
    assert!(
        bus.ether.collisions > 0,
        "the all-to-all must provoke collisions on a shared medium"
    );
}

/// A §7.3 shift-pattern program: W seconds of total work per cycle,
/// N-byte messages, `cycles` repetitions.
fn shift_program(
    p: u32,
    total_work: SimTime,
    n_bytes: usize,
    cycles: usize,
) -> impl Fn(&mut fxnet::RankCtx) -> u64 + Send + Sync + 'static {
    move |ctx| {
        let me = ctx.rank();
        let np = ctx.nprocs();
        assert_eq!(np, p);
        let per_rank = SimTime::from_nanos(total_work.as_nanos() / u64::from(np));
        for i in 0..cycles {
            ctx.compute_time(per_rank);
            let mut b = MessageBuilder::new(i as i32);
            b.pack_bytes(&vec![0u8; n_bytes]);
            ctx.send((me + 1) % np, b.finish());
            let _ = ctx.recv((me + np - 1) % np);
        }
        0
    }
}

#[test]
fn measured_burst_interval_tracks_the_qos_model() {
    // Run the shift program and compare the measured burst interval with
    // the analytic t_bi = W/P + N/B. The model's B is what the network
    // can give each of the P concurrent connections.
    let p = 4u32;
    let work = SimTime::from_secs(8);
    let n_bytes = 200_000usize;
    let run = Testbed::quiet(p).run(shift_program(p, work, n_bytes, 10));
    let profile = BurstProfile::of(&run.trace, SimTime::from_millis(300)).expect("bursts");
    let measured_tbi = profile.intervals.expect("multiple bursts").avg;

    let app = AppDescriptor::scalable(
        fxnet::fx::Pattern::Shift { k: 1 },
        work.as_secs_f64(),
        move |_| n_bytes as u64,
    );
    let net = QosNetwork::ethernet_10mbps();
    let bw = net.offer(app.concurrent_connections(p)).unwrap();
    let model_tbi = app.timing(p, bw).t_interval;
    let ratio = measured_tbi / model_tbi;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "measured t_bi {measured_tbi:.2}s vs model {model_tbi:.2}s (ratio {ratio:.2})"
    );
}

#[test]
fn burst_sizes_are_constant_for_the_shift_program() {
    // One of the paper's headline properties: the parallel program's
    // burst size is fixed by the program.
    let run = Testbed::quiet(4).run(shift_program(4, SimTime::from_secs(8), 150_000, 8));
    let profile = BurstProfile::of(&run.trace, SimTime::from_millis(300)).expect("bursts");
    assert!(
        profile.size_cv() < 0.25,
        "burst size CV {:.3} too high for constant bursts",
        profile.size_cv()
    );
}

#[test]
fn more_processors_shrink_the_interval_until_bandwidth_binds() {
    // The §7.3 tension, measured: with heavy messages, going from P=2 to
    // P=8 stops paying because each connection gets less bandwidth.
    let mut intervals = Vec::new();
    for p in [2u32, 4, 8] {
        let run = Testbed::quiet(p).run(shift_program(p, SimTime::from_secs(6), 400_000, 6));
        let profile = BurstProfile::of(&run.trace, SimTime::from_millis(200)).expect("bursts");
        intervals.push((p, profile.intervals.expect("cycles").avg));
    }
    // Compute share falls 3s → 0.75s, but the burst share rises; the
    // interval must not keep shrinking proportionally to 1/P.
    let (_, t2) = intervals[0];
    let (_, t8) = intervals[2];
    assert!(
        t8 > t2 / 4.0 * 1.3,
        "t_bi at P=8 ({t8:.2}s) should be held up by bandwidth vs P=2 ({t2:.2}s)"
    );
}

#[test]
fn burst_period_depends_on_network_bandwidth() {
    // The paper's closing observation: unlike media traffic, "the
    // periodicity is determined by application parameters and the
    // network itself" — t_bi = W/P + N/B shrinks when B grows. Same
    // program, two line rates.
    let prog = |ctx: &mut fxnet::RankCtx| {
        let me = ctx.rank();
        let np = ctx.nprocs();
        for i in 0..8usize {
            ctx.compute_time(SimTime::from_millis(500));
            let mut b = MessageBuilder::new(i as i32);
            b.pack_bytes(&vec![0u8; 300_000]);
            ctx.send((me + 1) % np, b.finish());
            let _ = ctx.recv((me + np - 1) % np);
        }
    };
    let slow = Testbed::quiet(4).run(prog);
    let fast = TestbedBuilder::quiet(4)
        .bandwidth_bps(100_000_000)
        .build()
        .run(prog);
    let tbi = |run: &fxnet::RunResult<()>| {
        BurstProfile::of(&run.trace, SimTime::from_millis(100))
            .and_then(|p| p.intervals.map(|i| i.avg))
            .expect("bursts")
    };
    let (t_slow, t_fast) = (tbi(&slow), tbi(&fast));
    assert!(
        t_fast < t_slow * 0.6,
        "10× bandwidth must shrink the burst interval ({t_slow:.2}s -> {t_fast:.2}s)"
    );
    // The compute share W/P is a floor: the interval cannot go below it.
    assert!(
        t_fast > 0.5,
        "interval {t_fast:.2}s below the compute floor"
    );
}

#[test]
fn descriptor_estimated_from_a_real_trace_predicts_the_run() {
    // Close the measurement → negotiation loop: run the shift program,
    // estimate [l, b, c] from its trace alone, and check the recovered
    // parameters match what the program actually did.
    use fxnet::qos::estimate::{estimate_descriptor, estimate_traffic, BurstScaling};
    let p = 4u32;
    let work = SimTime::from_secs(8); // 2 s per rank per cycle
    let n_bytes = 200_000usize;
    let run = Testbed::quiet(p).run(shift_program(p, work, n_bytes, 10));
    let est = estimate_traffic(&run.trace, p, SimTime::from_millis(300)).expect("bursts");
    // Recovered local computation ≈ W/P = 2 s.
    assert!(
        (est.local_s - 2.0).abs() < 0.5,
        "recovered l(P) = {:.2}s vs actual 2 s",
        est.local_s
    );
    // Aggregate burst ≈ P messages of n_bytes (+ protocol overhead).
    let expect = (p as usize * n_bytes) as f64;
    assert!(
        est.burst_bytes > expect * 0.9 && est.burst_bytes < expect * 1.3,
        "recovered burst {:.0} vs sent {expect:.0}",
        est.burst_bytes
    );
    assert!(est.burst_size_cv < 0.25, "constant bursts expected");
    // And the derived descriptor negotiates successfully.
    let app = estimate_descriptor(
        &est,
        fxnet::fx::Pattern::Shift { k: 1 },
        BurstScaling::Constant,
    );
    let deal =
        fxnet::qos::negotiate(&app, &QosNetwork::ethernet_10mbps(), 1..=16).expect("admissible");
    assert!(deal.p >= 1);
}

#[test]
fn deschedule_merges_adjacent_bursts() {
    // §6.1's 2DFFT artifact, asserted at burst level: injection reduces
    // the number of distinct bursts (some merge) while stretching time.
    let clean = TestbedBuilder::paper()
        .seed(4)
        .build()
        .run_kernel(KernelKind::Fft2d, 20)
        .unwrap();
    let merged = TestbedBuilder::paper()
        .seed(4)
        .deschedule(SimTime::from_millis(300), SimTime::from_millis(250))
        .build()
        .run_kernel(KernelKind::Fft2d, 20)
        .unwrap();
    let gap = SimTime::from_millis(120);
    let n_clean = BurstProfile::of(&clean.trace, gap).unwrap().count;
    let n_merged = BurstProfile::of(&merged.trace, gap).unwrap().count;
    // Stalls insert silence, so bursts can also split; what must grow is
    // the spread of burst sizes (merged phases double up).
    let cv_clean = BurstProfile::of(&clean.trace, gap).unwrap().size_cv();
    let cv_merged = BurstProfile::of(&merged.trace, gap).unwrap().size_cv();
    assert!(
        cv_merged > cv_clean || n_merged < n_clean,
        "descheduling should disturb the burst structure \
         (count {n_clean}->{n_merged}, cv {cv_clean:.3}->{cv_merged:.3})"
    );
    let i_clean = Stats::interarrivals_ms(&clean.trace).unwrap().max;
    let i_merged = Stats::interarrivals_ms(&merged.trace).unwrap().max;
    assert!(i_merged > i_clean);
}
