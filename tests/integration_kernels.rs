//! Cross-crate integration: the five kernels run end-to-end on the
//! simulated testbed and their traffic exhibits the paper's qualitative
//! results (§6.1) at reduced iteration counts.

use fxnet::trace::{
    average_bandwidth, binned_bandwidth, connection, dominant_modes, size_population, Periodogram,
    Stats,
};
use fxnet::{HostId, KernelKind, RunResult, SimTime, Testbed, TestbedBuilder};
use std::sync::OnceLock;

/// Run each kernel once and share the result across tests.
fn run(kernel: KernelKind) -> &'static RunResult<u64> {
    static SOR: OnceLock<RunResult<u64>> = OnceLock::new();
    static FFT: OnceLock<RunResult<u64>> = OnceLock::new();
    static TFFT: OnceLock<RunResult<u64>> = OnceLock::new();
    static SEQ: OnceLock<RunResult<u64>> = OnceLock::new();
    static HIST: OnceLock<RunResult<u64>> = OnceLock::new();
    let (cell, div) = match kernel {
        KernelKind::Sor => (&SOR, 5),    // 20 steps
        KernelKind::Fft2d => (&FFT, 10), // 10 iterations
        KernelKind::T2dfft => (&TFFT, 10),
        KernelKind::Seq => (&SEQ, 5),   // 1 iteration
        KernelKind::Hist => (&HIST, 5), // 20 iterations
    };
    cell.get_or_init(|| {
        TestbedBuilder::paper()
            .seed(1998)
            .build()
            .run_kernel(kernel, div)
            .unwrap()
    })
}

const BIN: SimTime = SimTime(10_000_000);

#[test]
fn packet_sizes_span_58_to_1518_for_bulk_kernels() {
    // Figure 3: SOR, 2DFFT, T2DFFT, HIST all range from pure ACKs to
    // full frames.
    for k in [
        KernelKind::Sor,
        KernelKind::Fft2d,
        KernelKind::T2dfft,
        KernelKind::Hist,
    ] {
        let s = Stats::packet_sizes(&run(k).trace).expect("traffic");
        assert_eq!(s.min, 58.0, "{}: min", k.name());
        assert_eq!(s.max, 1518.0, "{}: max", k.name());
    }
}

#[test]
fn seq_packets_are_tiny() {
    // Figure 3: SEQ spans 58..90 bytes only (element messages + ACKs).
    let s = Stats::packet_sizes(&run(KernelKind::Seq).trace).expect("traffic");
    assert_eq!(s.min, 58.0);
    assert_eq!(s.max, 90.0);
    assert!(s.avg > 58.0 && s.avg < 90.0);
}

#[test]
fn bulk_single_fragment_kernels_are_trimodal() {
    // §6.1: "for several of the kernels (2DFFT, HIST, SOR), the
    // distribution of packet sizes is trimodal": full frames, one
    // remainder size, and ACKs dominate.
    for k in [KernelKind::Fft2d, KernelKind::Sor, KernelKind::Hist] {
        let tr = &run(k).trace;
        let modes = dominant_modes(tr, 0.05);
        assert!(
            modes.contains(&58) && modes.contains(&1518),
            "{}: dominant modes {modes:?} must include ACKs and full frames",
            k.name()
        );
        assert!(
            modes.len() <= 4,
            "{}: expected a few dominant modes, got {modes:?}",
            k.name()
        );
    }
}

#[test]
fn t2dfft_has_broader_size_mix_than_2dfft() {
    // §4: T2DFFT's fragment-list messages produce "the variety of packet
    // sizes" — more distinct data-frame sizes than 2DFFT's copy-loop.
    let distinct = |k: KernelKind| {
        size_population(&run(k).trace)
            .into_iter()
            .filter(|&(sz, _)| sz > 90) // ignore ACK/ctrl populations
            .count()
    };
    let fft = distinct(KernelKind::Fft2d);
    let tfft = distinct(KernelKind::T2dfft);
    assert!(
        tfft >= fft,
        "T2DFFT should show at least as many data sizes ({tfft} vs {fft})"
    );
}

#[test]
fn interarrival_max_to_avg_ratio_is_high() {
    // Figure 4's burstiness observation: max/avg ≫ 1 for every kernel.
    for k in KernelKind::ALL {
        let s = Stats::interarrivals_ms(&run(k).trace).expect("traffic");
        assert!(
            s.burstiness() > 5.0,
            "{}: max/avg = {:.1} not bursty",
            k.name(),
            s.burstiness()
        );
    }
}

#[test]
fn bandwidth_ordering_matches_figure_5() {
    // 2DFFT and T2DFFT are the heavy kernels; SOR is tiny; nobody
    // saturates the 1.25 MB/s line rate.
    let bw = |k: KernelKind| average_bandwidth(&run(k).trace).expect("traffic");
    let sor = bw(KernelKind::Sor);
    let fft = bw(KernelKind::Fft2d);
    let tfft = bw(KernelKind::T2dfft);
    let hist = bw(KernelKind::Hist);
    assert!(fft > 10.0 * sor, "2DFFT {fft:.0} vs SOR {sor:.0}");
    assert!(tfft > 10.0 * sor, "T2DFFT {tfft:.0} vs SOR {sor:.0}");
    assert!(fft > hist, "2DFFT {fft:.0} vs HIST {hist:.0}");
    for k in KernelKind::ALL {
        assert!(
            bw(k) < 1_250_000.0,
            "{} exceeds the aggregate line rate",
            k.name()
        );
    }
}

#[test]
fn traffic_is_periodic_bursts_with_quiet_gaps() {
    // Figure 6: substantial portions of time with virtually no bandwidth
    // (compute phases) interleaved with intense bursts.
    for k in [KernelKind::Fft2d, KernelKind::Hist, KernelKind::Sor] {
        let series = binned_bandwidth(&run(k).trace, BIN);
        let quiet = series.iter().filter(|&&v| v < 1000.0).count();
        let busy = series.iter().filter(|&&v| v > 100_000.0).count();
        assert!(
            quiet * 10 > series.len(),
            "{}: expected ≥10% quiet bins, got {quiet}/{}",
            k.name(),
            series.len()
        );
        assert!(busy > 0, "{}: no bursts seen", k.name());
    }
}

/// The burst-train fundamental: the lowest-frequency spike among the
/// strong spectral peaks (the dominant bin may be a harmonic, as the
/// paper's own SEQ spectrum shows with its dominant 4 Hz *harmonic*).
fn fundamental(k: KernelKind, min_hz: f64) -> f64 {
    let series = binned_bandwidth(&run(k).trace, BIN);
    let spec = Periodogram::compute(&series, BIN);
    let spikes = spec.top_spikes(8, min_hz.max(4.0 * spec.df));
    let peak = spikes.iter().map(|s| s.power).fold(0.0, f64::max);
    // Lowest *substantial* spike: weak subharmonics do not count.
    spikes
        .iter()
        .filter(|s| s.freq >= min_hz && s.power >= 0.1 * peak)
        .map(|s| s.freq)
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn spectra_are_spiky_with_plausible_fundamentals() {
    // Figure 7: every kernel's bandwidth has clear harmonic structure at
    // the right time scale (paper: 2DFFT ≈0.5 Hz, HIST ≈5 Hz, SEQ
    // ≈4 Hz). We accept a factor-2 band — the shape claim.
    let f_fft = fundamental(KernelKind::Fft2d, 0.2);
    assert!(
        (0.25..=1.2).contains(&f_fft),
        "2DFFT fundamental {f_fft:.2} Hz vs paper ~0.5 Hz"
    );
    let f_hist = fundamental(KernelKind::Hist, 1.5);
    assert!(
        (2.0..=10.0).contains(&f_hist),
        "HIST fundamental {f_hist:.2} Hz vs paper ~5 Hz"
    );
    let f_seq = fundamental(KernelKind::Seq, 1.5);
    assert!(
        (1.5..=10.0).contains(&f_seq),
        "SEQ fundamental {f_seq:.2} Hz vs paper ~4 Hz"
    );
}

#[test]
fn sor_connection_traffic_is_strongly_periodic() {
    // §6.1: "the representative connection's power spectrum does show
    // considerable periodicity". The time-domain statement: the
    // connection's bandwidth autocorrelation has a strong peak at the
    // step period.
    let tr = &run(KernelKind::Sor).trace;
    let conn_tr = connection(tr, HostId(1), HostId(2));
    assert!(!conn_tr.is_empty(), "representative connection is silent");
    let series = binned_bandwidth(&conn_tr, BIN);
    // Look for a repeat between 0.5 s and 8 s (the step period).
    let acf = fxnet::trace::autocorrelation(&series, 800.min(series.len() - 1));
    let peak = acf.iter().enumerate().skip(50).map(|(l, &v)| (l, v)).fold(
        (0usize, f64::MIN),
        |best, (l, v)| {
            if v > best.1 {
                (l, v)
            } else {
                best
            }
        },
    );
    assert!(
        peak.1 > 0.25,
        "no periodic repeat: best ACF {:.3} at lag {} bins",
        peak.1,
        peak.0
    );
}

#[test]
fn all_to_all_connections_act_in_phase() {
    // §7.1: "the stronger the synchronization, the more likely it is
    // that the connections are in phase". 2DFFT's shift-scheduled
    // all-to-all tightly synchronizes all processors, so its busy
    // connections' bandwidth series correlate positively; media-style
    // independent sources would not.
    let tcp: Vec<fxnet::FrameRecord> = run(KernelKind::Fft2d)
        .trace
        .iter()
        .filter(|r| r.proto == fxnet::sim::Proto::Tcp)
        .copied()
        .collect();
    // Phase alignment lives at burst scale: at fine bins the shared
    // medium *serializes* the connections (near-zero correlation), while
    // at ~quarter-period bins their on/off phases align.
    let coarse = fxnet::trace::mean_connection_correlation(&tcp, SimTime::from_millis(500), 200)
        .expect("busy connections");
    let fine = fxnet::trace::mean_connection_correlation(&tcp, SimTime::from_millis(10), 200)
        .expect("busy connections");
    assert!(coarse > 0.15, "burst-scale correlation {coarse:.3}");
    assert!(
        coarse > fine + 0.1,
        "burst-scale ({coarse:.3}) must exceed fine-scale ({fine:.3}) correlation"
    );
}

#[test]
fn kernels_scale_to_other_processor_counts() {
    // The paper compiled for P=4, but Fx programs compile for arbitrary P
    // (§5.2): the distributed kernels must stay correct at P=2 and P=8.
    use fxnet::apps::{fft2d, hist, sor};
    for p in [2u32, 8] {
        let params = sor::SorParams::tiny();
        let want = sor::sor_sequential(&params, p as usize);
        let pp = params.clone();
        let run = Testbed::quiet(p).run(move |ctx| sor::sor_rank(ctx, &pp));
        assert_eq!(run.results, want, "SOR at P={p}");

        let params = fft2d::FftParams::tiny();
        let want = fft2d::fft2d_sequential(&params, p as usize);
        let pp = params.clone();
        let run = Testbed::quiet(p).run(move |ctx| fft2d::fft2d_rank(ctx, &pp));
        assert_eq!(run.results, want, "2DFFT at P={p}");

        let params = hist::HistParams::tiny();
        let want = hist::hist_sequential(&params);
        let pp = params.clone();
        let run = Testbed::quiet(p).run(move |ctx| hist::hist_rank(ctx, &pp));
        for r in &run.results {
            assert_eq!(r, &want, "HIST at P={p}");
        }
    }
}

#[test]
fn trace_survives_a_save_load_round_trip() {
    // The tcpdump-equivalent persistence (§5.3's offline workflow): a
    // measured trace written to disk and reloaded analyzes identically.
    let run = run(KernelKind::Hist);
    let path = std::env::temp_dir().join("fxnet-integration-trace.txt");
    fxnet::trace::save_trace(&path, &run.trace).expect("save");
    let back = fxnet::trace::load_trace(&path).expect("load");
    assert_eq!(back, run.trace);
    let a = Stats::packet_sizes(&run.trace);
    let b = Stats::packet_sizes(&back);
    assert_eq!(a, b);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn runs_are_deterministic() {
    let a = TestbedBuilder::paper()
        .seed(77)
        .build()
        .run_kernel(KernelKind::Hist, 25)
        .unwrap();
    let b = TestbedBuilder::paper()
        .seed(77)
        .build()
        .run_kernel(KernelKind::Hist, 25)
        .unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.results, b.results);
    assert_eq!(a.finished_at, b.finished_at);
}

#[test]
fn all_to_all_uses_all_pairs_neighbor_does_not() {
    // §7.1: the patterns differ in how many connections they use.
    // Consider only the kernels' TCP traffic: daemon heartbeats add UDP
    // pairs on any LAN.
    let pairs = |k: KernelKind| {
        let tcp: Vec<fxnet::FrameRecord> = run(k)
            .trace
            .iter()
            .filter(|r| r.proto == fxnet::sim::Proto::Tcp)
            .copied()
            .collect();
        fxnet::trace::host_pairs(&tcp)
            .into_iter()
            .filter(|&((a, b), _)| a.0 < 4 && b.0 < 4)
            .count()
    };
    // All-to-all: every ordered pair (data or reverse ACKs) = 12.
    assert_eq!(pairs(KernelKind::Fft2d), 12);
    // Neighbor: only adjacent pairs (plus their ACK channels) = 6.
    assert_eq!(pairs(KernelKind::Sor), 6);
}
