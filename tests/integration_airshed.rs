//! AIRSHED end-to-end: the three-timescale traffic structure of §6.2
//! (Figures 10–11) at a reduced hour count.

use fxnet::apps::airshed::AirshedParams;
use fxnet::trace::{average_bandwidth, binned_bandwidth, Periodogram, Stats};
use fxnet::{RunResult, SimTime, TestbedBuilder};
use std::sync::OnceLock;

fn run() -> &'static RunResult<u64> {
    static RUN: OnceLock<RunResult<u64>> = OnceLock::new();
    RUN.get_or_init(|| {
        let params = AirshedParams {
            hours: 4,
            ..AirshedParams::paper()
        };
        TestbedBuilder::paper()
            .seed(1998)
            .build()
            .run_airshed(params)
            .unwrap()
    })
}

const BIN: SimTime = SimTime(10_000_000);

#[test]
fn hour_length_is_near_66_seconds() {
    let per_hour = run().finished_at.as_secs_f64() / 4.0;
    assert!(
        (50.0..=80.0).contains(&per_hour),
        "simulated hour took {per_hour:.1} s vs paper's ≈66 s"
    );
}

#[test]
fn packet_population_matches_figure_8_shape() {
    let s = Stats::packet_sizes(&run().trace).expect("traffic");
    assert_eq!(s.min, 58.0);
    assert_eq!(s.max, 1518.0);
    // Bulk transposes → large average with a big ACK population.
    assert!(s.avg > 500.0 && s.avg < 1200.0, "avg {:.0}", s.avg);
}

#[test]
fn interarrivals_are_extremely_bursty() {
    // Figure 9: max and average interarrival an order of magnitude above
    // the kernels'; max/avg ratio very high (long preprocess silences).
    let s = Stats::interarrivals_ms(&run().trace).expect("traffic");
    assert!(s.max > 10_000.0, "max interarrival {:.0} ms", s.max);
    assert!(s.burstiness() > 100.0, "max/avg {:.0}", s.burstiness());
}

#[test]
fn average_bandwidth_is_low_despite_big_bursts() {
    // §6.2: 32.7 KB/s aggregate — far below the line rate because of the
    // long quiet preprocessing phases. Accept the band 10–200 KB/s.
    let bw = average_bandwidth(&run().trace).expect("traffic") / 1000.0;
    assert!((10.0..=200.0).contains(&bw), "aggregate {bw:.1} KB/s");
}

#[test]
fn bursts_come_in_k_pairs_per_hour() {
    // Figure 10: each hour shows 5 pairs of transpose peaks. Count burst
    // onsets (quiet → busy transitions) in the binned series.
    let series = binned_bandwidth(&run().trace, BIN);
    let threshold = 50_000.0;
    let mut bursts = 0;
    let mut in_burst = false;
    // Hysteresis: a burst ends only after 200 ms of quiet, so the gap
    // inside one transpose's ACK dialogue doesn't split it.
    let mut quiet_run = 0;
    for &v in &series {
        if v > threshold {
            if !in_burst {
                bursts += 1;
                in_burst = true;
            }
            quiet_run = 0;
        } else if in_burst {
            quiet_run += 1;
            if quiet_run > 20 {
                in_burst = false;
            }
        }
    }
    // 4 hours × 5 steps × 2 transposes = 40 expected; adjacent pairs may
    // merge when the transport gap is short, so accept 20..=60.
    assert!(
        (20..=60).contains(&bursts),
        "expected ~40 transpose bursts, counted {bursts}"
    );
}

#[test]
fn spectrum_shows_three_timescales() {
    // Figure 11: peaks near 0.015 Hz (hour), 0.2 Hz (chemistry step) and
    // ~5 Hz (transport) — each band's peak must stand out within it.
    let series = binned_bandwidth(&run().trace, BIN);
    let spec = Periodogram::compute(&series, BIN);
    let band_peak = |lo: f64, hi: f64| -> (f64, f64) {
        let mut best = (lo, 0.0);
        for i in 1..spec.power.len() {
            let f = spec.freq(i);
            if f >= lo && f < hi && spec.power[i] > best.1 {
                best = (f, spec.power[i]);
            }
        }
        best
    };
    let (f_hour, p_hour) = band_peak(0.008, 0.05);
    let (f_step, p_step) = band_peak(0.08, 0.8);
    let (_f_fast, p_fast) = band_peak(1.0, 20.0);
    assert!(
        (0.010..=0.022).contains(&f_hour),
        "hour peak at {f_hour:.4} Hz vs paper ≈0.015 Hz"
    );
    assert!(
        (0.1..=0.4).contains(&f_step),
        "step peak at {f_step:.3} Hz vs paper ≈0.2 Hz"
    );
    assert!(p_hour > 0.0 && p_step > 0.0 && p_fast > 0.0);
    // The hour-scale component carries the most energy (Figure 11's
    // dominant low-frequency spike).
    assert!(p_hour > p_fast, "hour {p_hour:.2e} vs fast {p_fast:.2e}");
}

#[test]
fn connection_traffic_mirrors_aggregate_population() {
    // §6.2: "the packet size distribution for the single connection is
    // very similar to the aggregate packet distribution".
    let tr = &run().trace;
    let conn = fxnet::trace::connection(tr, fxnet::HostId(0), fxnet::HostId(1));
    let s_all = Stats::packet_sizes(tr).unwrap();
    let s_conn = Stats::packet_sizes(&conn).unwrap();
    assert_eq!(s_conn.min, s_all.min);
    assert_eq!(s_conn.max, s_all.max);
    assert!(
        (s_conn.avg - s_all.avg).abs() < 0.25 * s_all.avg,
        "conn avg {:.0} vs aggregate {:.0}",
        s_conn.avg,
        s_all.avg
    );
}
