//! Serial-vs-parallel determinism of the experiment harness: fanning
//! the measured programs across a worker pool must be unobservable in
//! the results — same traces, same Ethernet stats, same watch events,
//! byte for byte — because every simulation is a pure function of its
//! `(seed, config)` and the pool returns results in job order.

use fxnet::apps::airshed::AirshedParams;
use fxnet::harness::Pool;
use fxnet::mix::MixTenant;
use fxnet::qos::QosNetwork;
use fxnet::watch::WatchConfig;
use fxnet::{KernelKind, RunResult, SimTime, Testbed, TestbedBuilder};

fn paper() -> Testbed {
    TestbedBuilder::paper().seed(1998).build()
}

/// Run one of the six measured programs at test scale.
fn run_program(job: Option<KernelKind>) -> RunResult<u64> {
    match job {
        Some(k) => paper().run_kernel(k, 50).unwrap(),
        None => paper()
            .run_airshed(AirshedParams {
                hours: 1,
                ..AirshedParams::paper()
            })
            .unwrap(),
    }
}

#[test]
fn six_programs_are_byte_identical_under_the_pool() {
    let jobs: Vec<Option<KernelKind>> = KernelKind::ALL
        .into_iter()
        .map(Some)
        .chain([None]) // None = AIRSHED
        .collect();
    let serial = Pool::serial().map(jobs.clone(), run_program);
    let pooled = Pool::new(3).map(jobs.clone(), run_program);
    for ((job, s), p) in jobs.iter().zip(&serial).zip(&pooled) {
        let name = job.map_or("AIRSHED", |k| k.name());
        assert_eq!(s.trace, p.trace, "{name}: trace diverged under the pool");
        assert_eq!(s.ether, p.ether, "{name}: MAC stats diverged");
        assert_eq!(s.finished_at, p.finished_at, "{name}: end time diverged");
    }
}

#[test]
fn seed_sweep_is_keyed_and_deterministic() {
    let seeds = [1u64, 2, 3, 4, 5, 6];
    let sweep = |pool: &Pool| {
        let mut s = pool.sweep::<u64, (usize, u64)>();
        for &seed in &seeds {
            s = s.add(seed, move || {
                let run = TestbedBuilder::paper()
                    .seed(seed)
                    .build()
                    .run_kernel(KernelKind::Hist, 100)
                    .unwrap();
                let bytes: u64 = run.trace.iter().map(|r| u64::from(r.wire_len)).sum();
                (run.trace.len(), bytes)
            });
        }
        s.run()
    };
    let serial = sweep(&Pool::serial());
    let pooled = sweep(&Pool::new(4));
    assert_eq!(serial, pooled, "sweep results must not depend on --jobs");
    let keys: Vec<u64> = pooled.iter().map(|(k, _)| *k).collect();
    assert_eq!(keys, seeds, "results come back sorted by seed");
}

/// The repro `watch` experiment in miniature: a mixed workload with the
/// streaming watcher attached, one tenant under-claiming its bursts.
fn watch_events() -> String {
    let out = TestbedBuilder::paper()
        .seed(1998)
        .bandwidth_bps(100_000_000)
        .build()
        .mix()
        .network(QosNetwork::new(12_500_000.0))
        .solo_baselines(false)
        .tenant(MixTenant::kernel(
            "SOR",
            KernelKind::Sor,
            100,
            4,
            SimTime::ZERO,
        ))
        .tenant(
            MixTenant::kernel(
                "2DFFT",
                KernelKind::Fft2d,
                100,
                4,
                SimTime::from_millis(250),
            )
            .with_claim_scale(0.125),
        )
        .watch(WatchConfig::default())
        .run();
    out.watch.expect("watch was enabled").events_jsonl()
}

#[test]
fn watch_events_are_unperturbed_by_pool_concurrency() {
    let alone = watch_events();
    // The same watch run while three other simulations saturate the
    // pool: the event log must not move by a byte.
    let results = Pool::new(4).map(vec![0u32, 1, 2, 3], |i| {
        if i == 1 {
            Some(watch_events())
        } else {
            run_program(Some(KernelKind::Hist));
            None
        }
    });
    let under_load = results.into_iter().flatten().next().expect("one watch run");
    assert_eq!(
        alone, under_load,
        "watch events must be identical under pool concurrency"
    );
}
