//! Cross-crate integration for the topology subsystem (`fxnet-topo`):
//! a single-segment topology is bit-identical to the legacy shared-bus
//! path for all six measured programs, multi-segment fabrics carry every
//! program to completion without losing frames, and full-stack runs on a
//! fabric are a pure function of the seed.

use fxnet::{KernelKind, RunResult, SimTime, TestbedBuilder, TopologySpec};

/// A measured program as a function of the fabric it runs on (`None` =
/// the legacy shared bus).
type Program = Box<dyn Fn(Option<TopologySpec>) -> RunResult<u64>>;

/// The six measured programs (§5) at reduced scale: the five Fx kernels
/// plus the §7.3 shift pattern, parameterized by the fabric.
fn programs() -> Vec<(&'static str, Program)> {
    let kernel = |k: KernelKind, div: usize| {
        Box::new(move |spec: Option<TopologySpec>| {
            let mut b = TestbedBuilder::paper().seed(7);
            if let Some(spec) = spec {
                b = b.topology(spec);
            }
            b.build().run_kernel(k, div).unwrap()
        }) as Program
    };
    vec![
        ("SOR", kernel(KernelKind::Sor, 20)),
        ("2DFFT", kernel(KernelKind::Fft2d, 20)),
        ("T2DFFT", kernel(KernelKind::T2dfft, 20)),
        ("SEQ", kernel(KernelKind::Seq, 5)),
        ("HIST", kernel(KernelKind::Hist, 20)),
        (
            "SHIFT",
            Box::new(|spec: Option<TopologySpec>| {
                let mut b = TestbedBuilder::quiet(4).seed(7);
                if let Some(spec) = spec {
                    b = b.topology(spec);
                }
                b.build().run(move |ctx| {
                    let payload = vec![1u8; 40_000];
                    for round in 0..4i32 {
                        ctx.compute_time(SimTime::from_millis(30));
                        let _ = fxnet::fx::shift(ctx, round, 1, &payload);
                    }
                    0u64
                })
            }),
        ),
    ]
}

/// Host count each program's testbed presents (the paper LAN for the
/// kernels, the quiet 4-host LAN for SHIFT).
fn hosts_of(name: &str) -> u32 {
    if name == "SHIFT" {
        4
    } else {
        9
    }
}

#[test]
fn single_segment_topology_is_bit_identical_to_the_bus_for_all_six_programs() {
    for (name, run) in programs() {
        let legacy = run(None);
        let topo = run(Some(TopologySpec::single_segment(
            hosts_of(name),
            fxnet::sim::RATE_10M,
        )));
        assert_eq!(legacy.trace, topo.trace, "{name}: trace must be identical");
        assert_eq!(
            legacy.ether.collisions, topo.ether.collisions,
            "{name}: MAC contention must be identical"
        );
        assert_eq!(
            legacy.finished_at, topo.finished_at,
            "{name}: program timing must be identical"
        );
    }
}

#[test]
fn every_program_completes_on_every_sweep_topology() {
    // The promiscuous trace records each delivered frame exactly once, so
    // trace length equaling the fabric's end-to-end delivery counter is
    // frame conservation seen from the top of the stack.
    for (name, run) in programs() {
        for spec in TopologySpec::sweep_set(hosts_of(name), fxnet::sim::RATE_10M) {
            let label = format!("{name} on {}", spec.label());
            let out = run(Some(spec));
            assert!(!out.trace.is_empty(), "{label}: must produce traffic");
            assert_eq!(
                out.ether.frames_delivered,
                out.trace.len() as u64,
                "{label}: every delivered frame traced exactly once"
            );
            for w in out.trace.windows(2) {
                assert!(w[0].time <= w[1].time, "{label}: trace is time-ordered");
            }
        }
    }
}

#[test]
fn full_stack_runs_on_a_fabric_are_a_pure_function_of_the_seed() {
    let run = |seed: u64| {
        TestbedBuilder::paper()
            .seed(seed)
            .topology(TopologySpec::two_level_tree(9, fxnet::sim::RATE_100M))
            .build()
            .run_kernel(KernelKind::Hist, 50)
            .unwrap()
    };
    let (a, b) = (run(3), run(3));
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.finished_at, b.finished_at);
}
