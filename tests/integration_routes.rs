//! PVM routing ablation: direct TCP (what the paper's programs used)
//! versus the daemon UDP relay (§4), plus daemon background chatter.

use fxnet::apps::hist::{hist_rank, hist_sequential, HistParams};
use fxnet::pvm::Route;
use fxnet::sim::Proto;
use fxnet::{KernelKind, TestbedBuilder};

#[test]
fn daemon_route_gives_identical_results() {
    let params = HistParams::tiny();
    let want = hist_sequential(&params);
    let p2 = params.clone();
    let run = TestbedBuilder::quiet(4)
        .route(Route::Daemon)
        .build()
        .run(move |ctx| hist_rank(ctx, &p2));
    for r in &run.results {
        assert_eq!(r, &want);
    }
}

#[test]
fn daemon_route_is_slower_and_udp_only() {
    let direct = TestbedBuilder::quiet(4)
        .route(Route::Direct)
        .build()
        .run_kernel(KernelKind::Hist, 25)
        .unwrap();
    let daemon = TestbedBuilder::quiet(4)
        .route(Route::Daemon)
        .build()
        .run_kernel(KernelKind::Hist, 25)
        .unwrap();
    assert!(
        daemon.finished_at > direct.finished_at,
        "daemon route must be slower ({} vs {})",
        daemon.finished_at,
        direct.finished_at
    );
    assert!(daemon.trace.iter().all(|r| r.proto == Proto::Udp));
    assert!(direct.trace.iter().any(|r| r.proto == Proto::Tcp));
}

#[test]
fn daemon_route_changes_packet_mix_not_volume_class() {
    // Same payload moves either way; the daemon route adds stop-and-wait
    // ack datagrams, the direct route adds TCP ACKs.
    let direct = TestbedBuilder::quiet(4)
        .route(Route::Direct)
        .build()
        .run_kernel(KernelKind::Sor, 25)
        .unwrap();
    let daemon = TestbedBuilder::quiet(4)
        .route(Route::Daemon)
        .build()
        .run_kernel(KernelKind::Sor, 25)
        .unwrap();
    let payload =
        |tr: &[fxnet::FrameRecord]| -> u64 { tr.iter().map(|r| u64::from(r.wire_len)).sum() };
    let (d, m) = (payload(&direct.trace), payload(&daemon.trace));
    assert!(
        d / 2 < m && m < d * 2,
        "byte volumes should be comparable: direct {d} vs daemon {m}"
    );
}

#[test]
fn idle_lan_machines_contribute_daemon_chatter() {
    // The paper's testbed has 9 machines; only 4 compute. The PVM
    // daemons on all of them exchange periodic UDP state — part of the
    // measured traffic mix.
    // 25 SOR steps ≈ 60+ s of simulated time: beyond two 30 s
    // heartbeat rounds.
    let run = TestbedBuilder::paper()
        .seed(5)
        .build()
        .run_kernel(KernelKind::Sor, 4)
        .unwrap();
    let udp_sources: std::collections::HashSet<u32> = run
        .trace
        .iter()
        .filter(|r| r.proto == Proto::Udp)
        .map(|r| r.src.0)
        .collect();
    assert!(
        udp_sources.iter().any(|&h| h >= 4),
        "idle hosts (4..9) must emit daemon datagrams, saw {udp_sources:?}"
    );
}

#[test]
fn tracer_host_never_transmits() {
    // Host 8 is the measurement workstation: promiscuous, silent except
    // for its own daemon heartbeat. With heartbeats off it must be
    // totally silent.
    let run = TestbedBuilder::paper()
        .heartbeats(false)
        .build()
        .run_kernel(KernelKind::Hist, 50)
        .unwrap();
    assert!(
        run.trace.iter().all(|r| r.src.0 != 8),
        "the tracer workstation must not source traffic"
    );
}
