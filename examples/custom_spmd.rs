//! Write your own compiler-style SPMD program, measure its traffic, fit
//! a spectral model, and negotiate QoS for it — the full library
//! workflow on a program that is not one of the paper's six.
//!
//! ```sh
//! cargo run --release --example custom_spmd
//! ```
//!
//! The program is a toy iterative solver: each rank relaxes a block,
//! exchanges halo edges with neighbors, tree-reduces a residual norm to
//! rank 0, and receives the convergence decision by broadcast — two
//! different collective patterns per iteration.

use fxnet::fx::{broadcast, neighbor_exchange, reduce_tree, Pattern};
use fxnet::qos::{negotiate, AppDescriptor, QosNetwork};
use fxnet::spectral::FourierModel;
use fxnet::trace::{average_bandwidth, binned_bandwidth, BurstProfile, Periodogram, Stats};
use fxnet::{SimTime, Testbed};

const N: usize = 256; // block edge per rank
const ITERS: usize = 40;

fn main() {
    println!("measuring a custom SPMD solver (neighbor + tree + broadcast per iteration)...");
    let run = Testbed::paper().run(|ctx| {
        let me = ctx.rank();
        let mut block = vec![f64::from(me) + 1.0; N * N];
        for iter in 0..ITERS {
            // Halo exchange: one N-element f64 edge each way.
            let edge_up: Vec<u8> = block[..N * 8 / 8]
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect();
            let edge_down: Vec<u8> = block[block.len() - N..]
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect();
            let (above, below) = neighbor_exchange(ctx, iter as i32, &edge_up, &edge_down);

            // Local relaxation (real arithmetic + modelled duration).
            let a0 = above.map_or(0.0, |a| f64::from_le_bytes(a[..8].try_into().unwrap()));
            let b0 = below.map_or(0.0, |b| f64::from_le_bytes(b[..8].try_into().unwrap()));
            let mut residual = 0.0f64;
            for v in block.iter_mut() {
                let next = 0.5 * *v + 0.25 * (a0 + b0);
                residual += (next - *v).abs();
                *v = next;
            }
            ctx.compute_mem((N * N * 48) as u64);

            // Residual reduction and convergence broadcast.
            let total = reduce_tree(
                ctx,
                1000 + iter as i32,
                residual.to_le_bytes().to_vec(),
                |acc, m| {
                    let a = f64::from_le_bytes(acc[..8].try_into().unwrap());
                    let b = f64::from_le_bytes(m.body[..8].try_into().unwrap());
                    (a + b).to_le_bytes().to_vec()
                },
            );
            let decision = broadcast(ctx, 2000 + iter as i32, 0, &total.unwrap_or_default());
            let _ = decision;
        }
        block.iter().sum::<f64>()
    });

    println!(
        "{} frames over {:.1} s simulated; results: {:?}",
        run.trace.len(),
        run.finished_at.as_secs_f64(),
        run.results
            .iter()
            .map(|v| format!("{v:.1}"))
            .collect::<Vec<_>>()
    );

    let s = Stats::packet_sizes(&run.trace).expect("traffic");
    println!(
        "packet sizes: min {:.0} max {:.0} avg {:.0}",
        s.min, s.max, s.avg
    );
    println!(
        "average bandwidth: {:.1} KB/s",
        average_bandwidth(&run.trace).unwrap_or(0.0) / 1000.0
    );

    let bin = SimTime::from_millis(10);
    let series = binned_bandwidth(&run.trace, bin);
    let spec = Periodogram::compute(&series, bin);
    if let Some(f) = spec.dominant_frequency(0.2) {
        println!(
            "iteration periodicity: {f:.2} Hz ({:.0} ms per iteration)",
            1000.0 / f
        );
    }
    let model = FourierModel::from_periodogram(&spec, 8, 0.1);
    println!(
        "8-spike Fourier model: {:.1}% of AC power, reconstruction RMS {:.3}",
        model.captured_power_fraction(&spec) * 100.0,
        model.reconstruction_error(&series, bin)
    );

    if let Some(profile) = BurstProfile::of(&run.trace, SimTime::from_millis(50)) {
        println!(
            "bursts: {} of {:.1} KB avg (size CV {:.3} — constant bursts)",
            profile.count,
            profile.sizes.avg / 1000.0,
            profile.size_cv()
        );
    }

    // Hand the network a [l(P), b(P), c] descriptor for this program.
    let app = AppDescriptor::scalable(Pattern::Neighbor, 2.0, |_| (N * 8) as u64);
    match negotiate(&app, &QosNetwork::ethernet_10mbps(), 1..=16) {
        Some(n) => println!(
            "QoS negotiation: run on P = {} (t_bi {:.3} s at {:.0} KB/s per connection)",
            n.p,
            n.timing.t_interval,
            n.burst_bw / 1000.0
        ),
        None => println!("QoS negotiation: rejected"),
    }
}
