//! Quickstart: measure one kernel's traffic on the simulated testbed.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's environment (P=4 tasks, 9 workstations, 10 Mb/s
//! shared Ethernet), runs the HIST kernel, and prints the per-program
//! rows the paper's tables report: packet sizes, interarrivals, average
//! bandwidth, and the dominant spectral frequency.

use fxnet::trace::{average_bandwidth, binned_bandwidth, Periodogram, Stats};
use fxnet::{KernelKind, SimTime, TestbedBuilder};

fn main() {
    let testbed = TestbedBuilder::paper().seed(1998).build();
    let kernel = KernelKind::Hist;
    // 10 of the paper's 100 outer iterations: enough to see periodicity.
    println!("running {} on the simulated testbed...", kernel.name());
    let run = testbed.run_kernel(kernel, 10).unwrap();

    println!(
        "\ntrace: {} frames over {:.1} s of simulated time",
        run.trace.len(),
        run.finished_at.as_secs_f64()
    );

    let sizes = Stats::packet_sizes(&run.trace).expect("nonempty trace");
    println!(
        "packet size  (B):  min {:>5.0}  max {:>5.0}  avg {:>6.1}  sd {:>6.1}",
        sizes.min, sizes.max, sizes.avg, sizes.sd
    );
    let inter = Stats::interarrivals_ms(&run.trace).expect("nonempty trace");
    println!(
        "interarrival (ms): min {:>5.1}  max {:>5.1}  avg {:>6.2}  sd {:>6.2}  (max/avg = {:.0})",
        inter.min,
        inter.max,
        inter.avg,
        inter.sd,
        inter.burstiness()
    );
    let bw = average_bandwidth(&run.trace).expect("nonempty trace");
    println!("average bandwidth: {:.1} KB/s", bw / 1000.0);

    let series = binned_bandwidth(&run.trace, SimTime::from_millis(10));
    let spec = Periodogram::compute(&series, SimTime::from_millis(10));
    if let Some(f) = spec.dominant_frequency(0.2) {
        println!(
            "dominant spectral component: {f:.2} Hz (period {:.0} ms)",
            1000.0 / f
        );
    }
    println!(
        "spectral flatness: {:.4} (spiky ≪ 1; media-like ≈ 1)",
        spec.flatness()
    );

    println!(
        "\nEthernet: {} collisions, {} frames delivered",
        run.ether.collisions, run.ether.frames_delivered
    );
}
