//! Measure any of the five Fx kernels and dump its bandwidth series and
//! power spectrum for plotting.
//!
//! ```sh
//! cargo run --release --example kernel_traffic -- 2DFFT 20
//! # args: kernel name (SOR|2DFFT|T2DFFT|SEQ|HIST), iteration divisor
//! # writes out/<kernel>.bw and out/<kernel>.spectrum
//! ```

use fxnet::trace::{
    average_bandwidth, binned_bandwidth, host_pairs, size_population, sliding_window_bandwidth,
    Periodogram, Stats,
};
use fxnet::{HostId, KernelKind, SimTime, Testbed};
use std::io::Write;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "2DFFT".to_string());
    let iter_div: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let kernel = KernelKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown kernel {name}; expected SOR|2DFFT|T2DFFT|SEQ|HIST");
            std::process::exit(2);
        });

    println!(
        "running {} (pattern: {}) at paper scale / {iter_div} ...",
        kernel.name(),
        kernel.pattern().name()
    );
    let run = Testbed::paper().run_kernel(kernel, iter_div).unwrap();
    println!(
        "{} frames, {:.1} s simulated",
        run.trace.len(),
        run.finished_at.as_secs_f64()
    );

    // Aggregate rows (Figures 3–5).
    let s = Stats::packet_sizes(&run.trace).expect("trace");
    let i = Stats::interarrivals_ms(&run.trace).expect("trace");
    let bw = average_bandwidth(&run.trace).expect("trace");
    println!("\naggregate:");
    println!(
        "  sizes  B : min {:.0} max {:.0} avg {:.0} sd {:.0}",
        s.min, s.max, s.avg, s.sd
    );
    println!(
        "  inter ms : min {:.1} max {:.1} avg {:.2} sd {:.2}",
        i.min, i.max, i.avg, i.sd
    );
    println!("  avg bw   : {:.1} KB/s", bw / 1000.0);

    // Representative connection (paper §6.1): host 0 → host 1.
    let conn = fxnet::trace::connection(&run.trace, HostId(0), HostId(1));
    if let (Some(cs), Some(ci)) = (Stats::packet_sizes(&conn), Stats::interarrivals_ms(&conn)) {
        println!("connection h0->h1:");
        println!(
            "  sizes  B : min {:.0} max {:.0} avg {:.0} sd {:.0}",
            cs.min, cs.max, cs.avg, cs.sd
        );
        println!(
            "  inter ms : min {:.1} max {:.1} avg {:.2} sd {:.2}",
            ci.min, ci.max, ci.avg, ci.sd
        );
        if let Some(cbw) = average_bandwidth(&conn) {
            println!("  avg bw   : {:.1} KB/s", cbw / 1000.0);
        }
    }

    // Size population (trimodality check).
    println!("\npacket-size population (top 6):");
    let mut pop = size_population(&run.trace);
    pop.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (sz, c) in pop.iter().take(6) {
        println!("  {sz:>5} B  ×{c}");
    }

    // Busiest pairs.
    println!("\nbusiest host pairs:");
    let mut pairs = host_pairs(&run.trace);
    pairs.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for ((a, b), c) in pairs.iter().take(6) {
        println!("  {a} -> {b}: {c} frames");
    }

    // Series + spectrum dumps.
    std::fs::create_dir_all("out").expect("create out/");
    let bin = SimTime::from_millis(10);
    let win = sliding_window_bandwidth(&run.trace, bin);
    let mut f = std::fs::File::create(format!("out/{}.bw", kernel.name())).expect("open");
    for (t, v) in &win {
        writeln!(f, "{:.4} {:.1}", t.as_secs_f64(), v / 1000.0).expect("write");
    }
    let series = binned_bandwidth(&run.trace, bin);
    let spec = Periodogram::compute(&series, bin);
    let mut f = std::fs::File::create(format!("out/{}.spectrum", kernel.name())).expect("open");
    for idx in 0..spec.power.len() {
        writeln!(f, "{:.4} {:.3e}", spec.freq(idx), spec.power[idx]).expect("write");
    }
    println!("\nwrote out/{0}.bw and out/{0}.spectrum", kernel.name());
    if let Some(fd) = spec.dominant_frequency(0.1) {
        println!("dominant frequency: {fd:.2} Hz");
    }
    println!("top spikes:");
    for sp in spec.top_spikes(5, 0.3) {
        println!("  {:>6.2} Hz  power {:.2e}", sp.freq, sp.power);
    }
}
