//! Run the AIRSHED air-quality skeleton and verify its three-timescale
//! traffic structure (paper §6.2, Figures 10–11).
//!
//! ```sh
//! cargo run --release --example airshed_forecast -- 6
//! # arg: number of simulation hours (default 6; the paper ran 100)
//! ```

use fxnet::apps::airshed::AirshedParams;
use fxnet::trace::{average_bandwidth, binned_bandwidth, Periodogram, Stats};
use fxnet::{SimTime, Testbed};
use std::io::Write;

fn main() {
    let hours: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let mut params = AirshedParams::paper();
    params.hours = hours;
    println!(
        "AIRSHED skeleton: s={} species, p={} grid points, l={} layers, k={} steps/hour, {} hours",
        params.species, params.grid, params.layers, params.steps, params.hours
    );

    let run = Testbed::paper().run_airshed(params.clone()).unwrap();
    println!(
        "{} frames over {:.1} s simulated ({:.1} s per hour)",
        run.trace.len(),
        run.finished_at.as_secs_f64(),
        run.finished_at.as_secs_f64() / hours as f64
    );

    let s = Stats::packet_sizes(&run.trace).expect("trace");
    let i = Stats::interarrivals_ms(&run.trace).expect("trace");
    println!(
        "packet sizes  B : min {:.0} max {:.0} avg {:.0} sd {:.0}",
        s.min, s.max, s.avg, s.sd
    );
    println!(
        "interarrival ms : min {:.1} max {:.1} avg {:.1} sd {:.1} (max/avg {:.0})",
        i.min,
        i.max,
        i.avg,
        i.sd,
        i.burstiness()
    );
    println!(
        "average bandwidth: {:.1} KB/s (paper: 32.7 KB/s aggregate)",
        average_bandwidth(&run.trace).expect("trace") / 1000.0
    );

    // The three timescales: hour (~1/66 Hz), chemistry step (~0.2 Hz),
    // horizontal transport (~5 Hz).
    let bin = SimTime::from_millis(10);
    let series = binned_bandwidth(&run.trace, bin);
    let spec = Periodogram::compute(&series, bin);
    println!("\nspectral peaks by band:");
    for (label, lo, hi) in [
        ("hour      (0 – 0.1 Hz)", 0.005, 0.1),
        ("chem step (0.1 – 1 Hz)", 0.1, 1.0),
        ("transport (1 – 20 Hz)", 1.0, 20.0),
    ] {
        let mut best = (0.0f64, 0.0f64);
        let mut idx = 0;
        while spec.freq(idx) < hi && idx < spec.power.len() {
            let f = spec.freq(idx);
            if f >= lo && spec.power[idx] > best.1 {
                best = (f, spec.power[idx]);
            }
            idx += 1;
        }
        println!(
            "  {label}: {:.3} Hz (period {:.1} s)",
            best.0,
            1.0 / best.0.max(1e-9)
        );
    }

    std::fs::create_dir_all("out").expect("out/");
    let mut f = std::fs::File::create("out/AIRSHED.bw").expect("open");
    for (j, v) in series.iter().enumerate() {
        writeln!(f, "{:.3} {:.1}", j as f64 * 0.01, v / 1000.0).expect("write");
    }
    println!("\nwrote out/AIRSHED.bw (10 ms binned bandwidth, KB/s)");
}
