//! The QoS negotiation model of §7.3: the program hands the network its
//! [l(P), b(P), c] descriptor; the network answers with the processor
//! count P that minimizes the burst interval.
//!
//! ```sh
//! cargo run --release --example qos_negotiation
//! ```

use fxnet::fx::Pattern;
use fxnet::qos::{negotiate, AppDescriptor, QosNetwork};

fn show(label: &str, app: &AppDescriptor, net: &QosNetwork) {
    println!("\n{label} (pattern: {})", app.pattern.name());
    println!("   P   B/conn KB/s    t_b s    t_bi s");
    for p in [2u32, 4, 8, 16] {
        match net.offer(app.concurrent_connections(p)) {
            Some(bw) => {
                let t = app.timing(p, bw);
                println!(
                    "  {p:>2}   {:>11.1}   {:>6.2}   {:>7.2}",
                    bw / 1000.0,
                    t.t_burst,
                    t.t_interval
                );
            }
            None => println!("  {p:>2}   (no admissible bandwidth)"),
        }
    }
    match negotiate(app, net, 1..=16) {
        Some(n) => println!(
            "  -> network recommends P = {} (t_bi = {:.2} s, {:.0} KB/s per connection)",
            n.p,
            n.timing.t_interval,
            n.burst_bw / 1000.0
        ),
        None => println!("  -> network rejects the application"),
    }
}

fn main() {
    println!("QoS negotiation on the paper's 10 Mb/s Ethernet");
    let net = QosNetwork::ethernet_10mbps();

    // A 2DFFT-shaped application: all-to-all, message (N/P)² complex f32.
    let fft = AppDescriptor::scalable(Pattern::AllToAll, 24.0, |p| (512 / u64::from(p)).pow(2) * 8);
    show("2DFFT-like application", &fft, &net);

    // A SOR-shaped application: neighbor pattern, constant O(N) rows.
    let sor = AppDescriptor::scalable(Pattern::Neighbor, 60.0, |_| 512 * 8);
    show("SOR-like application", &sor, &net);

    // §7.3's shift-pattern example with a heavyweight message.
    let shift = AppDescriptor::scalable(Pattern::Shift { k: 1 }, 8.0, |_| 1_000_000);
    show("shift-pattern application (1 MB bursts)", &shift, &net);

    // The same negotiation on a congested network.
    let mut busy = QosNetwork::ethernet_10mbps();
    busy.commit(900_000.0).expect("capacity available");
    show("shift-pattern application on a busy network", &shift, &busy);
}
