//! Fit a truncated Fourier-series model (§7.2) to a measured kernel and
//! regenerate synthetic traffic from it.
//!
//! ```sh
//! cargo run --release --example spectral_model
//! ```
//!
//! Measures 2DFFT, fits models keeping 1..64 spikes, shows the
//! reconstruction error converging, then synthesizes a packet trace from
//! the 16-spike model and compares its spectrum with the measured one.

use fxnet::sim::SimRng;
use fxnet::spectral::generate::SynthConfig;
use fxnet::spectral::{synthesize_trace, FourierModel};
use fxnet::trace::{average_bandwidth, binned_bandwidth, Periodogram};
use fxnet::{KernelKind, SimTime, Testbed};

fn main() {
    println!("measuring 2DFFT...");
    let run = Testbed::paper().run_kernel(KernelKind::Fft2d, 10).unwrap();
    let bin = SimTime::from_millis(10);
    let series = binned_bandwidth(&run.trace, bin);
    let spec = Periodogram::compute(&series, bin);
    println!(
        "measured: {:.1} KB/s average, dominant {:.2} Hz",
        average_bandwidth(&run.trace).unwrap() / 1000.0,
        spec.dominant_frequency(0.1).unwrap_or(0.0)
    );

    println!("\nFourier truncation convergence (\"choose the important spikes\"):");
    println!("  spikes   captured-power   reconstruction-RMS");
    for k in [1usize, 2, 4, 8, 16, 32, 64] {
        let m = FourierModel::from_periodogram(&spec, k, 0.05);
        println!(
            "  {k:>5}   {:>13.1}%   {:>17.3}",
            m.captured_power_fraction(&spec) * 100.0,
            m.reconstruction_error(&series, bin)
        );
    }

    // Regenerate traffic from the 16-spike model.
    let model = FourierModel::from_periodogram(&spec, 16, 0.05);
    let mut rng = SimRng::new(42);
    let synth = synthesize_trace(
        &model,
        SimTime::from_secs_f64(series.len() as f64 * 0.01),
        &SynthConfig::default(),
        &mut rng,
    );
    let synth_series = binned_bandwidth(&synth, bin);
    let synth_spec = Periodogram::compute(&synth_series, bin);
    println!("\nsynthetic trace: {} frames", synth.len());
    println!(
        "  measured  dominant: {:.2} Hz, mean {:.1} KB/s",
        spec.dominant_frequency(0.1).unwrap_or(0.0),
        spec.mean / 1000.0
    );
    println!(
        "  synthetic dominant: {:.2} Hz, mean {:.1} KB/s",
        synth_spec.dominant_frequency(0.1).unwrap_or(0.0),
        synth_spec.mean / 1000.0
    );
    println!(
        "  flatness: measured {:.4} vs synthetic {:.4}",
        spec.flatness(),
        synth_spec.flatness()
    );
}
